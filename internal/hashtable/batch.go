package hashtable

import (
	"math/bits"
	"sync/atomic"
	"unsafe"

	"mmjoin/internal/tuple"
)

// This file holds the batch-at-a-time kernels: for every table type a
// monomorphized BuildBatch, LookupBatch and fused ProbeJoinBatch that
// process up to BatchSize tuples per call. Hashes for the whole batch
// are computed up front through the table's resolved hashfn.BatchFunc
// (no per-key indirect call), and the probe kernels walk their buckets
// in an AMAC-style interleaved state machine (Kocberber et al., VLDB
// 2015): a gather pass issues one independent memory access per lane
// back-to-back, so an out-of-order core overlaps the cache misses of up
// to BatchSize probes instead of serializing them behind one pointer
// chase; subsequent rounds advance only the surviving lanes, compacted
// with indexed writes, never append.
//
// Bounds-check elimination discipline: every per-lane scratch buffer is
// re-sliced to the batch length n before the lane loops, table arrays
// are indexed through masks derived from their own lengths (all powers
// of two), and emit positions are masked with the constant BatchSize-1,
// so the hot loops compile free of bounds checks.
//
// All kernels are semantically equivalent to their scalar counterparts
// run tuple-at-a-time in batch order; LookupBatch and ProbeJoinBatch
// mirror Lookup's first-match semantics exactly, so a probe batch of n
// keys emits at most n matches.

// BatchSize is the number of tuples processed per batch kernel call.
// 256 lanes keep every per-lane state array comfortably inside L1
// while exposing far more memory-level parallelism than the ~10
// outstanding misses a core can sustain.
const BatchSize = 256

// BatchScratch holds the per-lane state arrays shared by all batch
// kernels. One instance per worker is enough; kernels may clobber every
// buffer. The zero value is ready to use — buffers are allocated
// lazily on first touch so a worker that only ever probes one table
// kind pays only for the arrays that kind needs.
//
// The buffers are pointers to fixed [BatchSize] arrays, not slices:
// with the batch length proven ≤ BatchSize by checkBatch, every lane
// index below n is in bounds of the array by construction, so the
// kernels' scratch accesses compile without bounds checks. The
// accessors are //go:noinline so the one-time allocation (and its
// escape, which is the point of a reusable buffer) stays out of the
// kernels' //mmjoin:noescape regions.
type BatchScratch struct {
	hashes *[BatchSize]uint64
	slots  *[BatchSize]uint64
	lanes  *[BatchSize]int32
	lanes2 *[BatchSize]int32
	biased *[BatchSize]uint32
	curk   *[BatchSize]uint32
	dists  *[BatchSize]uint8
	bptrs  *[BatchSize]*chainedBucket
}

//
//mmjoin:hotpath
//go:noinline
func (s *BatchScratch) hashBuf() *[BatchSize]uint64 {
	if s.hashes == nil {
		s.hashes = new([BatchSize]uint64)
	}
	return s.hashes
}

//
//mmjoin:hotpath
//go:noinline
func (s *BatchScratch) slotBuf() *[BatchSize]uint64 {
	if s.slots == nil {
		s.slots = new([BatchSize]uint64)
	}
	return s.slots
}

//
//mmjoin:hotpath
//go:noinline
func (s *BatchScratch) laneBuf() *[BatchSize]int32 {
	if s.lanes == nil {
		s.lanes = new([BatchSize]int32)
	}
	return s.lanes
}

//
//mmjoin:hotpath
//go:noinline
func (s *BatchScratch) laneBuf2() *[BatchSize]int32 {
	if s.lanes2 == nil {
		s.lanes2 = new([BatchSize]int32)
	}
	return s.lanes2
}

//
//mmjoin:hotpath
//go:noinline
func (s *BatchScratch) keyBuf() *[BatchSize]uint32 {
	if s.biased == nil {
		s.biased = new([BatchSize]uint32)
	}
	return s.biased
}

//
//mmjoin:hotpath
//go:noinline
func (s *BatchScratch) curkBuf() *[BatchSize]uint32 {
	if s.curk == nil {
		s.curk = new([BatchSize]uint32)
	}
	return s.curk
}

//
//mmjoin:hotpath
//go:noinline
func (s *BatchScratch) distBuf() *[BatchSize]uint8 {
	if s.dists == nil {
		s.dists = new([BatchSize]uint8)
	}
	return s.dists
}

//
//mmjoin:hotpath
//go:noinline
func (s *BatchScratch) bucketBuf() *[BatchSize]*chainedBucket {
	if s.bptrs == nil {
		s.bptrs = new([BatchSize]*chainedBucket)
	}
	return s.bptrs
}

// MatchBatch receives the output of a fused ProbeJoinBatch call:
// parallel build/probe payload arrays with N valid entries. Because the
// probe kernels mirror Lookup's at-most-one-match semantics, N never
// exceeds the probe batch length, so fixed [BatchSize] arrays hold any
// batch — and emit positions masked with BatchSize-1 index them without
// bounds checks. The zero value is ready to use; both arrays are
// non-nil after any ProbeJoinBatch call.
type MatchBatch struct {
	N     int
	Build *[BatchSize]tuple.Payload
	Probe *[BatchSize]tuple.Payload
}

//
//mmjoin:hotpath
//go:noinline
func (m *MatchBatch) bufs() (*[BatchSize]tuple.Payload, *[BatchSize]tuple.Payload) {
	if m.Build == nil {
		m.Build = new([BatchSize]tuple.Payload)
	}
	if m.Probe == nil {
		m.Probe = new([BatchSize]tuple.Payload)
	}
	return m.Build, m.Probe
}

// checkBatch bounds a kernel's batch length; kernels accept at most
// BatchSize lanes because the scratch state arrays are sized for that.
// After it returns, the compiler's prove pass knows n ≤ BatchSize, so
// indexing a scratch array with any lane < n is check-free.
//
//mmjoin:hotpath
//mmjoin:inline
func checkBatch(n int) {
	if n > BatchSize {
		//mmjoin:allow(hotalloc) cold failure path: the boxed panic argument only materializes on kernel misuse
		panic("hashtable: batch kernels accept at most BatchSize tuples per call")
	}
}

// checkSpan panics when a buffer of length have cannot hold n lanes.
// Kernels run it on every caller-supplied slice before re-slicing to
// the batch length, which both reports misuse with a message instead of
// a raw index panic and lets the prove pass drop the re-slice check.
//
//mmjoin:hotpath
//mmjoin:inline
func checkSpan(have, n int) {
	if have < n {
		//mmjoin:allow(hotalloc) cold failure path: the boxed panic argument only materializes on kernel misuse
		panic("hashtable: batch buffer shorter than the key batch")
	}
}

// clearBatchOutputs resets the per-lane outputs of a LookupBatch call.
// The empty-table early exits must go through it: the output arrays are
// worker scratch reused across batches, and a lane left untouched would
// carry a stale found=true (and payload) from an earlier batch.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
//mmjoin:inline
func clearBatchOutputs(payloads []tuple.Payload, found []bool) {
	for i := range payloads {
		payloads[i] = 0
	}
	for i := range found {
		found[i] = false
	}
}

// ---------------------------------------------------------------------
// ChainedTable
// ---------------------------------------------------------------------

// BuildBatch inserts keys[i]/payloads[i] for the whole batch
// (single-writer), equivalent to Insert called in batch order.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *ChainedTable) BuildBatch(keys []tuple.Key, payloads []tuple.Payload, s *BatchScratch) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	buckets := t.buckets
	if len(buckets) == 0 {
		return
	}
	// Worst case one overflow bucket per insert; growing up front keeps
	// the chain walks below relocation-free, so the bucket pointer held
	// in b stays valid across newOverflow calls.
	t.ensureOverflowSpace(n)
	mask := uint64(len(buckets) - 1)
	checkSpan(len(payloads), n)
	payloads = payloads[:n]
	for li := 0; li < n; li++ {
		b := &buckets[h[li]&mask]
		for {
			cnt := int(b.meta)
			if cnt < chainedBucketTuples {
				b.tuples[cnt&(chainedBucketTuples-1)] = tuple.Tuple{Key: keys[li], Payload: payloads[li]}
				b.meta = uint32(cnt + 1)
				break
			}
			if b.next == 0 {
				//mmjoin:allow(perfgate) newOverflow's reslice bound is guaranteed by ensureOverflowSpace(n) above; the check runs only on the rare overflow-allocation path
				b.next = t.newOverflow()
			}
			//mmjoin:allow(perfgate) next is a 1-based link into the overflow arena, in range by construction; prove cannot see the link invariant
			b = &t.arena[b.next-1]
		}
	}
	t.n += n
}

// BuildBatchConcurrent inserts the batch under per-bucket latches, the
// batched equivalent of InsertConcurrent. Overflow buckets are claimed
// from the PrepareConcurrent reservation, which must have been set up
// before the parallel build phase. As with the scalar path the global
// count is not maintained; call FinishConcurrentBuild after all
// builders complete.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *ChainedTable) BuildBatchConcurrent(keys []tuple.Key, payloads []tuple.Payload, s *BatchScratch) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	buckets := t.buckets
	if len(buckets) == 0 {
		return
	}
	mask := uint64(len(buckets) - 1)
	checkSpan(len(payloads), n)
	payloads = payloads[:n]
	for li := 0; li < n; li++ {
		head := &buckets[h[li]&mask]
		t.lock(head)
		b := head
		for {
			cnt := int(b.meta & chainedCountMask)
			if b == head {
				cnt = int(atomic.LoadUint32(&b.meta) & chainedCountMask)
			}
			if cnt < chainedBucketTuples {
				b.tuples[cnt&(chainedBucketTuples-1)] = tuple.Tuple{Key: keys[li], Payload: payloads[li]}
				if b == head {
					atomic.StoreUint32(&b.meta, uint32(cnt+1)|chainedLatchBit)
				} else {
					b.meta = uint32(cnt + 1)
				}
				break
			}
			if b.next == 0 {
				b.next = t.newOverflowConcurrent()
			}
			//mmjoin:allow(perfgate) next is a 1-based link into the PrepareConcurrent reservation, in range by construction; prove cannot see the link invariant
			b = &t.arena[b.next-1]
		}
		atomic.StoreUint32(&head.meta, atomic.LoadUint32(&head.meta)&^uint32(chainedLatchBit))
	}
}

// LookupBatch looks up every key of the batch, writing payloads[i] and
// found[i]; equivalent to Lookup per key. Chains are walked one bucket
// per round across all still-active lanes, overlapping the dependent
// loads of different probes.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *ChainedTable) LookupBatch(keys []tuple.Key, s *BatchScratch, payloads []tuple.Payload, found []bool) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	ptrs := s.bucketBuf()
	lanes := s.laneBuf()
	slots := s.slotBuf()
	checkSpan(len(payloads), n)
	checkSpan(len(found), n)
	payloads = payloads[:n]
	found = found[:n]
	buckets := t.buckets
	if len(buckets) == 0 {
		// The outputs must still be written: callers reuse the scratch
		// arrays across batches, so leaving them untouched would replay
		// a previous batch's hits as phantom matches.
		clearBatchOutputs(payloads, found)
		return
	}
	mask := uint64(len(buckets) - 1)
	arena := t.arena
	pfd := prefetchDist()
	// Gather pass: one independent head-bucket load per lane, issued
	// back-to-back so the out-of-order core keeps the maximum number of
	// cache misses in flight, preceded by an explicit prefetch hint
	// pfd lanes ahead to extend that overlap beyond the core's
	// out-of-order window. The loaded meta word both warms the bucket
	// line for round 0 and feeds it the in-bucket count.
	for li := 0; li < n; li++ {
		if p := li + pfd; pfd > 0 && p < n {
			pf(unsafe.Pointer(&buckets[h[p&(BatchSize-1)]&mask]))
		}
		b := &buckets[h[li]&mask]
		ptrs[li] = b
		slots[li] = uint64(b.meta)
	}
	// Round 0 runs on warm lines with the pre-loaded meta. A surviving
	// lane's next overflow bucket is prefetched the moment its link is
	// read, so the following round runs on warm lines too.
	nn := 0
	for li := 0; li < n; li++ {
		b := ptrs[li]
		cnt := int(uint32(slots[li]) & chainedCountMask)
		payloads[li] = 0
		found[li] = false
		hit := false
		for i := 0; i < cnt; i++ {
			if b.tuples[i&(chainedBucketTuples-1)].Key == keys[li] {
				payloads[li] = b.tuples[i&(chainedBucketTuples-1)].Payload
				found[li] = true
				hit = true
				break
			}
		}
		if nx := b.next; !hit && nx != 0 {
			//mmjoin:allow(perfgate) nx is a 1-based link into the overflow arena, in range by construction; prove cannot see the link invariant
			nb := &arena[nx-1]
			if pfd > 0 {
				pf(unsafe.Pointer(nb))
			}
			ptrs[li] = nb
			lanes[nn&(BatchSize-1)] = int32(li)
			nn++
		}
	}
	// Remaining rounds walk the overflow chains of the surviving lanes.
	// The compaction machine only ever stores lane numbers below n, but
	// the prove pass cannot carry that invariant through the buffer, so
	// each round restates it: the mask keeps the scratch reads in
	// bounds, and the never-taken re-bound branch re-establishes li < n
	// for every access after it.
	for nn > 0 {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			b := ptrs[li]
			cnt := int(b.meta & chainedCountMask)
			hit := false
			for i := 0; i < cnt; i++ {
				if b.tuples[i&(chainedBucketTuples-1)].Key == keys[li] {
					payloads[li] = b.tuples[i&(chainedBucketTuples-1)].Payload
					found[li] = true
					hit = true
					break
				}
			}
			if nx := b.next; !hit && nx != 0 {
				//mmjoin:allow(perfgate) nx is a 1-based link into the overflow arena, in range by construction; prove cannot see the link invariant
				nb := &arena[nx-1]
				if pfd > 0 {
					pf(unsafe.Pointer(nb))
				}
				ptrs[li] = nb
				lanes[na&(BatchSize-1)] = int32(li)
				na++
			}
		}
		nn = na
	}
}

// ProbeJoinBatch fuses LookupBatch with match emission: for every probe
// key with a (first) match, the pair of build payload and probe payload
// is appended to out. out.N is reset on entry.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *ChainedTable) ProbeJoinBatch(keys []tuple.Key, probePayloads []tuple.Payload, s *BatchScratch, out *MatchBatch) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	ptrs := s.bucketBuf()
	lanes := s.laneBuf()
	slots := s.slotBuf()
	bp, pp := out.bufs()
	buckets := t.buckets
	if len(buckets) == 0 {
		out.N = 0
		return
	}
	mask := uint64(len(buckets) - 1)
	arena := t.arena
	pfd := prefetchDist()
	checkSpan(len(probePayloads), n)
	probePayloads = probePayloads[:n]
	// Gather pass: see LookupBatch (including the pfd-ahead prefetch).
	for li := 0; li < n; li++ {
		if p := li + pfd; pfd > 0 && p < n {
			pf(unsafe.Pointer(&buckets[h[p&(BatchSize-1)]&mask]))
		}
		b := &buckets[h[li]&mask]
		ptrs[li] = b
		slots[li] = uint64(b.meta)
	}
	nn := 0
	m := 0
	// Round 0 on warm lines.
	for li := 0; li < n; li++ {
		b := ptrs[li]
		cnt := int(uint32(slots[li]) & chainedCountMask)
		hit := false
		for i := 0; i < cnt; i++ {
			if b.tuples[i&(chainedBucketTuples-1)].Key == keys[li] {
				bp[m&(BatchSize-1)] = b.tuples[i&(chainedBucketTuples-1)].Payload
				pp[m&(BatchSize-1)] = probePayloads[li]
				m++
				hit = true
				break
			}
		}
		if nx := b.next; !hit && nx != 0 {
			//mmjoin:allow(perfgate) nx is a 1-based link into the overflow arena, in range by construction; prove cannot see the link invariant
			nb := &arena[nx-1]
			if pfd > 0 {
				pf(unsafe.Pointer(nb))
			}
			ptrs[li] = nb
			lanes[nn&(BatchSize-1)] = int32(li)
			nn++
		}
	}
	for nn > 0 {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			b := ptrs[li]
			cnt := int(b.meta & chainedCountMask)
			hit := false
			for i := 0; i < cnt; i++ {
				if b.tuples[i&(chainedBucketTuples-1)].Key == keys[li] {
					bp[m&(BatchSize-1)] = b.tuples[i&(chainedBucketTuples-1)].Payload
					pp[m&(BatchSize-1)] = probePayloads[li]
					m++
					hit = true
					break
				}
			}
			if nx := b.next; !hit && nx != 0 {
				//mmjoin:allow(perfgate) nx is a 1-based link into the overflow arena, in range by construction; prove cannot see the link invariant
				nb := &arena[nx-1]
				if pfd > 0 {
					pf(unsafe.Pointer(nb))
				}
				ptrs[li] = nb
				lanes[na&(BatchSize-1)] = int32(li)
				na++
			}
		}
		nn = na
	}
	out.N = m
}

// ---------------------------------------------------------------------
// LinearTable
// ---------------------------------------------------------------------

// BuildBatch inserts the batch without synchronization, equivalent to
// Insert called in batch order.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *LinearTable) BuildBatch(keys []tuple.Key, payloads []tuple.Payload, s *BatchScratch) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	tk := t.keys
	if len(tk) == 0 {
		return
	}
	checkSpan(len(t.payloads), len(tk))
	tp := t.payloads[:len(tk)]
	mask := uint64(len(tk) - 1)
	checkSpan(len(payloads), n)
	payloads = payloads[:n]
	for li := 0; li < n; li++ {
		biased := uint32(keys[li]) + 1
		i := h[li] & mask
		ok := false
		for probes := uint64(0); probes <= mask; probes++ {
			if tk[i&mask] == 0 {
				tk[i&mask] = biased
				tp[i&mask] = payloads[li]
				ok = true
				break
			}
			i = (i + 1) & mask
		}
		if !ok {
			//mmjoin:allow(hotalloc) cold failure path: the boxed panic argument only materializes when the table is misused
			panic("hashtable: LinearTable full — size it for the build side before inserting")
		}
	}
	t.n += int64(n)
}

// BuildBatchConcurrent inserts the batch with the CAS protocol of
// InsertConcurrent; the element count is updated once per batch instead
// of once per tuple.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *LinearTable) BuildBatchConcurrent(keys []tuple.Key, payloads []tuple.Payload, s *BatchScratch) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	tk := t.keys
	if len(tk) == 0 {
		return
	}
	checkSpan(len(t.payloads), len(tk))
	tp := t.payloads[:len(tk)]
	mask := uint64(len(tk) - 1)
	checkSpan(len(payloads), n)
	payloads = payloads[:n]
	for li := 0; li < n; li++ {
		biased := uint32(keys[li]) + 1
		i := h[li] & mask
		ok := false
		for probes := uint64(0); probes <= mask; probes++ {
			if atomic.LoadUint32(&tk[i&mask]) == 0 &&
				atomic.CompareAndSwapUint32(&tk[i&mask], 0, biased) {
				tp[i&mask] = payloads[li]
				ok = true
				break
			}
			i = (i + 1) & mask
		}
		if !ok {
			//mmjoin:allow(hotalloc) cold failure path: the boxed panic argument only materializes when the table is misused
			panic("hashtable: LinearTable full — size it for the build side before inserting")
		}
	}
	atomic.AddInt64(&t.n, int64(n))
}

// LookupBatch looks up every key of the batch; equivalent to Lookup per
// key. All active lanes advance one probe per round, so the slot loads
// of up to BatchSize independent probe sequences are in flight at once.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *LinearTable) LookupBatch(keys []tuple.Key, s *BatchScratch, payloads []tuple.Payload, found []bool) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	slots := s.slotBuf()
	biased := s.keyBuf()
	lanes := s.laneBuf()
	curk := s.curkBuf()
	checkSpan(len(payloads), n)
	checkSpan(len(found), n)
	payloads = payloads[:n]
	found = found[:n]
	tk := t.keys
	if len(tk) == 0 {
		clearBatchOutputs(payloads, found)
		return
	}
	checkSpan(len(t.payloads), len(tk))
	tp := t.payloads[:len(tk)]
	mask := uint64(len(tk) - 1)
	pfd := prefetchDist()
	// Gather pass: load every lane's home slot key — one independent
	// cache miss per lane, issued back-to-back so the out-of-order core
	// keeps the maximum number of misses in flight, preceded by an
	// explicit prefetch hint pfd lanes ahead to extend that overlap
	// beyond the core's out-of-order window.
	for li := 0; li < n; li++ {
		if p := li + pfd; pfd > 0 && p < n {
			pf(unsafe.Pointer(&tk[h[p&(BatchSize-1)]&mask]))
		}
		i := h[li] & mask
		slots[li] = i
		curk[li] = tk[i&mask]
	}
	// Round 0 resolves from the gathered keys; the payload loads of the
	// hit lanes are themselves independent and overlap across lanes.
	nn := 0
	for li := 0; li < n; li++ {
		cur := curk[li]
		bk := uint32(keys[li]) + 1
		payloads[li] = 0
		found[li] = false
		if cur == bk {
			payloads[li] = tp[slots[li]&mask]
			found[li] = true
			continue
		}
		if cur == 0 {
			continue
		}
		slots[li] = (slots[li] + 1) & mask
		biased[li] = bk
		lanes[nn&(BatchSize-1)] = int32(li)
		nn++
	}
	// Remaining rounds advance the surviving probe sequences in
	// lockstep; see ChainedTable.LookupBatch for the lane re-bound.
	for round := uint64(0); nn > 0 && round < mask; round++ {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			i := slots[li] & mask
			cur := tk[i&mask]
			if cur == biased[li] {
				payloads[li] = tp[i&mask]
				found[li] = true
				continue
			}
			if cur == 0 {
				continue
			}
			slots[li] = (i + 1) & mask
			lanes[na&(BatchSize-1)] = int32(li)
			na++
		}
		nn = na
	}
}

// ProbeJoinBatch fuses LookupBatch with match emission into out.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *LinearTable) ProbeJoinBatch(keys []tuple.Key, probePayloads []tuple.Payload, s *BatchScratch, out *MatchBatch) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	slots := s.slotBuf()
	biased := s.keyBuf()
	lanes := s.laneBuf()
	curk := s.curkBuf()
	bp, pp := out.bufs()
	tk := t.keys
	if len(tk) == 0 {
		out.N = 0
		return
	}
	checkSpan(len(t.payloads), len(tk))
	tp := t.payloads[:len(tk)]
	mask := uint64(len(tk) - 1)
	checkSpan(len(probePayloads), n)
	probePayloads = probePayloads[:n]
	pfd := prefetchDist()
	// Gather pass: see LookupBatch (including the pfd-ahead prefetch).
	for li := 0; li < n; li++ {
		if p := li + pfd; pfd > 0 && p < n {
			pf(unsafe.Pointer(&tk[h[p&(BatchSize-1)]&mask]))
		}
		i := h[li] & mask
		slots[li] = i
		curk[li] = tk[i&mask]
	}
	nn := 0
	m := 0
	// Round 0 resolves from the gathered keys.
	for li := 0; li < n; li++ {
		cur := curk[li]
		bk := uint32(keys[li]) + 1
		if cur == bk {
			bp[m&(BatchSize-1)] = tp[slots[li]&mask]
			pp[m&(BatchSize-1)] = probePayloads[li]
			m++
			continue
		}
		if cur == 0 {
			continue
		}
		slots[li] = (slots[li] + 1) & mask
		biased[li] = bk
		lanes[nn&(BatchSize-1)] = int32(li)
		nn++
	}
	for round := uint64(0); nn > 0 && round < mask; round++ {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			i := slots[li] & mask
			cur := tk[i&mask]
			if cur == biased[li] {
				bp[m&(BatchSize-1)] = tp[i&mask]
				pp[m&(BatchSize-1)] = probePayloads[li]
				m++
				continue
			}
			if cur == 0 {
				continue
			}
			slots[li] = (i + 1) & mask
			lanes[na&(BatchSize-1)] = int32(li)
			na++
		}
		nn = na
	}
	out.N = m
}

// ---------------------------------------------------------------------
// RobinHoodTable
// ---------------------------------------------------------------------

// BuildBatch inserts the batch (single-writer), equivalent to Insert in
// batch order. Only the initial slot benefits from the batched hash:
// the displacement swaps are inherently sequential per lane.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *RobinHoodTable) BuildBatch(keys []tuple.Key, payloads []tuple.Payload, s *BatchScratch) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	tk := t.keys
	if len(tk) == 0 {
		return
	}
	checkSpan(len(t.payloads), len(tk))
	checkSpan(len(t.dist), len(tk))
	tp := t.payloads[:len(tk)]
	td := t.dist[:len(tk)]
	mask := uint64(len(tk) - 1)
	checkSpan(len(payloads), n)
	payloads = payloads[:n]
	for li := 0; li < n; li++ {
		key := uint32(keys[li]) + 1
		payload := payloads[li]
		i := h[li] & mask
		var d uint8
		ok := false
		for probes := uint64(0); probes <= mask; probes++ {
			if tk[i&mask] == 0 {
				tk[i&mask] = key
				tp[i&mask] = payload
				td[i&mask] = d
				t.n++
				ok = true
				break
			}
			if td[i&mask] < d {
				tk[i&mask], key = key, tk[i&mask]
				tp[i&mask], payload = payload, tp[i&mask]
				td[i&mask], d = d, td[i&mask]
			}
			i = (i + 1) & mask
			if d < 255 {
				d++
			}
		}
		if !ok {
			//mmjoin:allow(hotalloc) cold failure path: the boxed panic argument only materializes when the table is misused
			panic("hashtable: RobinHoodTable full")
		}
	}
}

// LookupBatch looks up every key of the batch; equivalent to Lookup per
// key, including the Robin Hood distance early-exit.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *RobinHoodTable) LookupBatch(keys []tuple.Key, s *BatchScratch, payloads []tuple.Payload, found []bool) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	slots := s.slotBuf()
	biased := s.keyBuf()
	dists := s.distBuf()
	lanes := s.laneBuf()
	curk := s.curkBuf()
	checkSpan(len(payloads), n)
	checkSpan(len(found), n)
	payloads = payloads[:n]
	found = found[:n]
	tk := t.keys
	if len(tk) == 0 {
		clearBatchOutputs(payloads, found)
		return
	}
	checkSpan(len(t.payloads), len(tk))
	checkSpan(len(t.dist), len(tk))
	tp := t.payloads[:len(tk)]
	td := t.dist[:len(tk)]
	mask := uint64(len(tk) - 1)
	pfd := prefetchDist()
	// Gather pass, as in LinearTable.LookupBatch (including the
	// pfd-ahead prefetch).
	for li := 0; li < n; li++ {
		if p := li + pfd; pfd > 0 && p < n {
			pf(unsafe.Pointer(&tk[h[p&(BatchSize-1)]&mask]))
		}
		i := h[li] & mask
		slots[li] = i
		curk[li] = tk[i&mask]
	}
	nn := 0
	for li := 0; li < n; li++ {
		cur := curk[li]
		bk := uint32(keys[li]) + 1
		payloads[li] = 0
		found[li] = false
		if cur == bk {
			payloads[li] = tp[slots[li]&mask]
			found[li] = true
			continue
		}
		if cur == 0 {
			continue
		}
		// Distance 0 probes never early-exit (dist is unsigned), so a
		// non-empty, non-matching home slot always advances.
		slots[li] = (slots[li] + 1) & mask
		biased[li] = bk
		dists[li] = 1
		lanes[nn&(BatchSize-1)] = int32(li)
		nn++
	}
	for round := uint64(0); nn > 0 && round < mask; round++ {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			i := slots[li] & mask
			cur := tk[i&mask]
			if cur == 0 {
				continue
			}
			if cur == biased[li] {
				payloads[li] = tp[i&mask]
				found[li] = true
				continue
			}
			d := dists[li]
			if td[i&mask] < d {
				continue
			}
			slots[li] = (i + 1) & mask
			if d < 255 {
				dists[li] = d + 1
			}
			lanes[na&(BatchSize-1)] = int32(li)
			na++
		}
		nn = na
	}
}

// ProbeJoinBatch fuses LookupBatch with match emission into out.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *RobinHoodTable) ProbeJoinBatch(keys []tuple.Key, probePayloads []tuple.Payload, s *BatchScratch, out *MatchBatch) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	slots := s.slotBuf()
	biased := s.keyBuf()
	dists := s.distBuf()
	lanes := s.laneBuf()
	curk := s.curkBuf()
	bp, pp := out.bufs()
	tk := t.keys
	if len(tk) == 0 {
		out.N = 0
		return
	}
	checkSpan(len(t.payloads), len(tk))
	checkSpan(len(t.dist), len(tk))
	tp := t.payloads[:len(tk)]
	td := t.dist[:len(tk)]
	mask := uint64(len(tk) - 1)
	checkSpan(len(probePayloads), n)
	probePayloads = probePayloads[:n]
	pfd := prefetchDist()
	// Gather pass with the pfd-ahead prefetch; see LookupBatch.
	for li := 0; li < n; li++ {
		if p := li + pfd; pfd > 0 && p < n {
			pf(unsafe.Pointer(&tk[h[p&(BatchSize-1)]&mask]))
		}
		i := h[li] & mask
		slots[li] = i
		curk[li] = tk[i&mask]
	}
	nn := 0
	m := 0
	for li := 0; li < n; li++ {
		cur := curk[li]
		bk := uint32(keys[li]) + 1
		if cur == bk {
			bp[m&(BatchSize-1)] = tp[slots[li]&mask]
			pp[m&(BatchSize-1)] = probePayloads[li]
			m++
			continue
		}
		if cur == 0 {
			continue
		}
		slots[li] = (slots[li] + 1) & mask
		biased[li] = bk
		dists[li] = 1
		lanes[nn&(BatchSize-1)] = int32(li)
		nn++
	}
	for round := uint64(0); nn > 0 && round < mask; round++ {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			i := slots[li] & mask
			cur := tk[i&mask]
			if cur == 0 {
				continue
			}
			if cur == biased[li] {
				bp[m&(BatchSize-1)] = tp[i&mask]
				pp[m&(BatchSize-1)] = probePayloads[li]
				m++
				continue
			}
			d := dists[li]
			if td[i&mask] < d {
				continue
			}
			slots[li] = (i + 1) & mask
			if d < 255 {
				dists[li] = d + 1
			}
			lanes[na&(BatchSize-1)] = int32(li)
			na++
		}
		nn = na
	}
	out.N = m
}

// ---------------------------------------------------------------------
// ArrayTable
// ---------------------------------------------------------------------

// BuildBatch stores the batch (single-writer per bitmap word),
// equivalent to Insert in batch order. No hashing is involved.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *ArrayTable) BuildBatch(keys []tuple.Key, payloads []tuple.Payload, _ *BatchScratch) {
	n := len(keys)
	checkBatch(n)
	pl := t.payloads
	pres := t.present
	checkSpan(len(payloads), n)
	payloads = payloads[:n]
	for li := 0; li < n; li++ {
		i := int(keys[li] - t.base)
		if uint(i) >= uint(len(pl)) {
			//mmjoin:allow(hotalloc) cold failure path: the boxed panic argument only materializes on a domain violation
			panic("hashtable: key outside the array domain")
		}
		pl[i] = payloads[li]
		//mmjoin:allow(perfgate) present is sized ⌈len(payloads)/64⌉ at construction, so i>>6 is in range whenever i is; prove cannot divide that invariant through the shift
		pres[i>>6] |= 1 << uint(i&63)
	}
	t.n += n
}

// BuildBatchConcurrent stores the batch with atomic bitmap updates,
// equivalent to InsertConcurrent in batch order; call
// FinishConcurrentBuild afterwards.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *ArrayTable) BuildBatchConcurrent(keys []tuple.Key, payloads []tuple.Payload, _ *BatchScratch) {
	n := len(keys)
	checkBatch(n)
	pl := t.payloads
	pres := t.present
	checkSpan(len(payloads), n)
	payloads = payloads[:n]
	for li := 0; li < n; li++ {
		i := int(keys[li] - t.base)
		//mmjoin:allow(perfgate) this bounds check is the only domain validation on the concurrent path, exactly like the scalar InsertConcurrent — eliminating it would change semantics
		pl[i] = payloads[li]
		//mmjoin:allow(perfgate) same as above: the implicit check on the bitmap word is the concurrent path's domain validation
		atomic.OrUint64(&pres[i>>6], 1<<uint(i&63))
	}
}

// LookupBatch looks up every key of the batch; equivalent to Lookup per
// key. The array table has no probe sequences, so a single pass
// suffices; the bitmap and payload loads of all lanes still overlap.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *ArrayTable) LookupBatch(keys []tuple.Key, _ *BatchScratch, payloads []tuple.Payload, found []bool) {
	n := len(keys)
	checkBatch(n)
	pl := t.payloads
	pres := t.present
	checkSpan(len(payloads), n)
	checkSpan(len(found), n)
	payloads = payloads[:n]
	found = found[:n]
	for li := 0; li < n; li++ {
		i := int(keys[li] - t.base)
		//mmjoin:allow(perfgate) present is sized ⌈len(payloads)/64⌉ at construction, so after the short-circuit domain test i>>6 is in range; prove cannot divide that invariant through the shift
		if uint(i) >= uint(len(pl)) || pres[i>>6]&(1<<uint(i&63)) == 0 {
			payloads[li] = 0
			found[li] = false
			continue
		}
		payloads[li] = pl[i]
		found[li] = true
	}
}

// ProbeJoinBatch fuses LookupBatch with match emission into out.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *ArrayTable) ProbeJoinBatch(keys []tuple.Key, probePayloads []tuple.Payload, _ *BatchScratch, out *MatchBatch) {
	n := len(keys)
	checkBatch(n)
	bp, pp := out.bufs()
	pl := t.payloads
	pres := t.present
	checkSpan(len(probePayloads), n)
	probePayloads = probePayloads[:n]
	m := 0
	for li := 0; li < n; li++ {
		i := int(keys[li] - t.base)
		//mmjoin:allow(perfgate) present is sized ⌈len(payloads)/64⌉ at construction, so after the short-circuit domain test i>>6 is in range; prove cannot divide that invariant through the shift
		if uint(i) >= uint(len(pl)) || pres[i>>6]&(1<<uint(i&63)) == 0 {
			continue
		}
		bp[m&(BatchSize-1)] = pl[i]
		pp[m&(BatchSize-1)] = probePayloads[li]
		m++
	}
	out.N = m
}

// ---------------------------------------------------------------------
// CHT
// ---------------------------------------------------------------------
//
// The CHT is bulk-loaded through CHTBuilder (placement needs a global
// bucket-order sort), so there is no BuildBatch; only the probe side is
// batched.

// LookupBatch looks up every key of the batch; equivalent to Lookup per
// key including the overflow-table fallback, which is resolved with
// scalar map lookups for the lanes that missed the bitmap.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *CHT) LookupBatch(keys []tuple.Key, s *BatchScratch, payloads []tuple.Payload, found []bool) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	slots := s.slotBuf()
	lanes := s.laneBuf()
	checkSpan(len(payloads), n)
	checkSpan(len(found), n)
	payloads = payloads[:n]
	found = found[:n]
	groups := t.groups
	if len(groups) == 0 {
		clearBatchOutputs(payloads, found)
		return
	}
	array := t.array
	mask := t.mask
	bucketCount := mask + 1
	for li := 0; li < n; li++ {
		h[li] &= mask
		slots[li] = h[li]
		lanes[li] = int32(li)
		payloads[li] = 0
		found[li] = false
	}
	nn := n
	for nn > 0 {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			pos := slots[li]
			if pos >= bucketCount || pos-h[li] >= chtMaxDisplacement {
				continue
			}
			g := &groups[(pos>>5)&uint64(len(groups)-1)]
			off := uint(pos & 31)
			if g.bits&(1<<off) == 0 {
				continue
			}
			idx := int(g.prefix) + bits.OnesCount32(g.bits&((1<<off)-1))
			//mmjoin:allow(perfgate) idx is the popcount rank of an occupied bucket, in range of the dense array by CHT construction; prove cannot see the rank invariant
			if array[idx].Key == keys[li] {
				//mmjoin:allow(perfgate) same rank-derived index as the line above
				payloads[li] = array[idx].Payload
				found[li] = true
				continue
			}
			slots[li] = pos + 1
			lanes[na&(BatchSize-1)] = int32(li)
			na++
		}
		nn = na
	}
	if len(t.overflow) > 0 {
		for li := 0; li < n; li++ {
			if found[li] {
				continue
			}
			if ps := t.overflow[keys[li]]; len(ps) > 0 {
				payloads[li] = ps[0]
				found[li] = true
			}
		}
	}
}

// ProbeJoinBatch fuses LookupBatch with match emission into out. Lanes
// that miss the bitmap are collected and resolved against the overflow
// table afterwards, preserving Lookup's exact semantics.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *CHT) ProbeJoinBatch(keys []tuple.Key, probePayloads []tuple.Payload, s *BatchScratch, out *MatchBatch) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	slots := s.slotBuf()
	lanes := s.laneBuf()
	misses := s.laneBuf2()
	bp, pp := out.bufs()
	groups := t.groups
	if len(groups) == 0 {
		out.N = 0
		return
	}
	array := t.array
	mask := t.mask
	bucketCount := mask + 1
	checkSpan(len(probePayloads), n)
	probePayloads = probePayloads[:n]
	for li := 0; li < n; li++ {
		h[li] &= mask
		slots[li] = h[li]
		lanes[li] = int32(li)
	}
	nn := n
	m := 0
	nm := 0
	for nn > 0 {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			pos := slots[li]
			if pos >= bucketCount || pos-h[li] >= chtMaxDisplacement {
				misses[nm&(BatchSize-1)] = int32(li)
				nm++
				continue
			}
			g := &groups[(pos>>5)&uint64(len(groups)-1)]
			off := uint(pos & 31)
			if g.bits&(1<<off) == 0 {
				misses[nm&(BatchSize-1)] = int32(li)
				nm++
				continue
			}
			idx := int(g.prefix) + bits.OnesCount32(g.bits&((1<<off)-1))
			//mmjoin:allow(perfgate) idx is the popcount rank of an occupied bucket, in range of the dense array by CHT construction; prove cannot see the rank invariant
			if array[idx].Key == keys[li] {
				//mmjoin:allow(perfgate) same rank-derived index as the line above
				bp[m&(BatchSize-1)] = array[idx].Payload
				pp[m&(BatchSize-1)] = probePayloads[li]
				m++
				continue
			}
			slots[li] = pos + 1
			lanes[na&(BatchSize-1)] = int32(li)
			na++
		}
		nn = na
	}
	if len(t.overflow) > 0 {
		for a := 0; a < nm; a++ {
			li := int(misses[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			if ps := t.overflow[keys[li]]; len(ps) > 0 {
				bp[m&(BatchSize-1)] = ps[0]
				pp[m&(BatchSize-1)] = probePayloads[li]
				m++
			}
		}
	}
	out.N = m
}

// ---------------------------------------------------------------------
// SparseTable
// ---------------------------------------------------------------------

// BuildBatch inserts the batch (single-writer), equivalent to Insert in
// batch order. The per-group dense-slice shifting stays scalar; only
// the hash computation is batched.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *SparseTable) BuildBatch(keys []tuple.Key, payloads []tuple.Payload, s *BatchScratch) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	checkSpan(len(payloads), n)
	payloads = payloads[:n]
	for li := 0; li < n; li++ {
		pos := (h[li] * sparseBucketsPerTuple) & t.mask
		ok := false
		for probes := uint64(0); probes <= t.mask; probes++ {
			//mmjoin:allow(perfgate) the group index pos>>5 is bounded by mask/32, an invariant of the table's sizing that prove cannot divide through the shift
			g := &t.groups[pos>>5]
			off := uint(pos & 31)
			if g.bits&(1<<off) == 0 {
				idx := g.denseIndex(off)
				//mmjoin:allow(hotalloc,perfgate) growth path of the dense group slice: the amortized append and shift are the cold insert, not the probe loop
				g.dense = append(g.dense, tuple.Tuple{})
				//mmjoin:allow(perfgate) idx is the select rank of the bit within the group, in range by construction; prove cannot see the rank invariant
				copy(g.dense[idx+1:], g.dense[idx:])
				//mmjoin:allow(perfgate) same rank-derived index as the line above
				g.dense[idx] = tuple.Tuple{Key: keys[li], Payload: payloads[li]}
				g.bits |= 1 << off
				t.n++
				ok = true
				break
			}
			pos = (pos + 1) & t.mask
		}
		if !ok {
			//mmjoin:allow(hotalloc) cold failure path: the boxed panic argument only materializes when the table is misused
			panic("hashtable: SparseTable full")
		}
	}
}

// LookupBatch looks up every key of the batch; equivalent to Lookup per
// key.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *SparseTable) LookupBatch(keys []tuple.Key, s *BatchScratch, payloads []tuple.Payload, found []bool) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	slots := s.slotBuf()
	lanes := s.laneBuf()
	checkSpan(len(payloads), n)
	checkSpan(len(found), n)
	payloads = payloads[:n]
	found = found[:n]
	groups := t.groups
	if len(groups) == 0 {
		clearBatchOutputs(payloads, found)
		return
	}
	mask := t.mask
	for li := 0; li < n; li++ {
		slots[li] = (h[li] * sparseBucketsPerTuple) & mask
		lanes[li] = int32(li)
		payloads[li] = 0
		found[li] = false
	}
	nn := n
	for round := uint64(0); nn > 0 && round <= mask; round++ {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			pos := slots[li]
			g := &groups[(pos>>5)&uint64(len(groups)-1)]
			off := uint(pos & 31)
			if g.bits&(1<<off) == 0 {
				continue
			}
			//mmjoin:allow(perfgate) the dense index is the select rank of the bit within the group, in range by construction; prove cannot see the rank invariant
			if e := g.dense[g.denseIndex(off)]; e.Key == keys[li] {
				payloads[li] = e.Payload
				found[li] = true
				continue
			}
			slots[li] = (pos + 1) & mask
			lanes[na&(BatchSize-1)] = int32(li)
			na++
		}
		nn = na
	}
}

// ProbeJoinBatch fuses LookupBatch with match emission into out.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *SparseTable) ProbeJoinBatch(keys []tuple.Key, probePayloads []tuple.Payload, s *BatchScratch, out *MatchBatch) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	slots := s.slotBuf()
	lanes := s.laneBuf()
	bp, pp := out.bufs()
	groups := t.groups
	if len(groups) == 0 {
		out.N = 0
		return
	}
	mask := t.mask
	checkSpan(len(probePayloads), n)
	probePayloads = probePayloads[:n]
	for li := 0; li < n; li++ {
		slots[li] = (h[li] * sparseBucketsPerTuple) & mask
		lanes[li] = int32(li)
	}
	nn := n
	m := 0
	for round := uint64(0); nn > 0 && round <= mask; round++ {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			pos := slots[li]
			g := &groups[(pos>>5)&uint64(len(groups)-1)]
			off := uint(pos & 31)
			if g.bits&(1<<off) == 0 {
				continue
			}
			//mmjoin:allow(perfgate) the dense index is the select rank of the bit within the group, in range by construction; prove cannot see the rank invariant
			if e := g.dense[g.denseIndex(off)]; e.Key == keys[li] {
				bp[m&(BatchSize-1)] = e.Payload
				pp[m&(BatchSize-1)] = probePayloads[li]
				m++
				continue
			}
			slots[li] = (pos + 1) & mask
			lanes[na&(BatchSize-1)] = int32(li)
			na++
		}
		nn = na
	}
	out.N = m
}
