package hashtable

import (
	"testing"

	"mmjoin/internal/hashfn"
	"mmjoin/internal/tuple"
)

// Fuzz target: every table design agrees with a map for arbitrary
// unique-key insert sequences and arbitrary hash choice.
func FuzzTablesAgainstMap(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, uint8(0))
	f.Add([]byte{255, 0, 255, 0, 7}, uint8(1))
	hashes := []hashfn.Func{hashfn.Identity, hashfn.Murmur, hashfn.Multiplicative, hashfn.CRC}
	f.Fuzz(func(t *testing.T, keys []byte, hsel uint8) {
		if len(keys) > 4096 {
			t.Skip()
		}
		h := hashes[int(hsel)%len(hashes)]
		ref := map[tuple.Key]tuple.Payload{}
		var tuples []tuple.Tuple
		for i := 0; i+1 < len(keys); i += 2 {
			k := tuple.Key(keys[i])<<8 | tuple.Key(keys[i+1])
			if _, dup := ref[k]; dup {
				continue
			}
			ref[k] = tuple.Payload(i)
			tuples = append(tuples, tuple.Tuple{Key: k, Payload: tuple.Payload(i)})
		}
		ct := NewChainedTable(len(tuples), h)
		lt := NewLinearTable(len(tuples), h)
		rh := NewRobinHoodTable(len(tuples), 0, h)
		st := NewSparseTable(len(tuples), h)
		at := NewArrayTable(0, 1<<16)
		for _, tp := range tuples {
			ct.Insert(tp)
			lt.Insert(tp)
			rh.Insert(tp)
			st.Insert(tp)
			at.Insert(tp)
		}
		cht := BuildCHT(tuples, h)
		for _, tbl := range []Table{ct, lt, rh, st, at, cht} {
			if tbl.Len() != len(ref) {
				t.Fatalf("%T len %d, want %d", tbl, tbl.Len(), len(ref))
			}
			for k, v := range ref {
				if p, ok := tbl.Lookup(k); !ok || p != v {
					t.Fatalf("%T lost key %d", tbl, k)
				}
			}
			if _, ok := tbl.Lookup(1 << 17); ok {
				t.Fatalf("%T phantom hit", tbl)
			}
		}
	})
}
