// Package hashtable implements the four hash-table designs the thirteen
// join algorithms of Schuh et al. (SIGMOD 2016) are built on:
//
//   - ChainedTable: bucket chaining with in-bucket latches and tuples and
//     locks in a single array, following the cache-efficient layout of
//     Balkesen et al. (ICDE 2013). Used by PRB and PRO.
//   - LinearTable: a lock-free linear-probing table synchronized with
//     compare-and-swap, following Lang et al. (IMDM 2013). Used by NOP,
//     PRL, CPRL and the iS variants.
//   - CHT: the Concise Hash Table of Barber et al. (PVLDB 2014): a
//     bitmap with interleaved population counts over a dense tuple
//     array, bulk-loaded once. Used by CHTJ.
//   - ArrayTable: a plain payload array indexed by key for dense
//     domains. Used by NOPA, PRA, CPRA.
//
// All tables use a pluggable hash function (identity by default, see
// internal/hashfn) and are sized to powers of two so the hash reduces
// with a mask.
package hashtable

import (
	"fmt"

	"mmjoin/internal/tuple"
)

// Table is the common read API of all four designs; the write/build APIs
// differ by design (CAS inserts, latched inserts, bulk loads) and are
// concrete methods. Join algorithms use the concrete types; the interface
// exists so that correctness tests and the advisor example can treat all
// designs uniformly.
type Table interface {
	// Lookup returns the payload stored for key. For tables holding
	// duplicate keys it returns one arbitrary match; the paper's
	// workloads have unique build keys, making Lookup exact.
	Lookup(k tuple.Key) (tuple.Payload, bool)
	// ForEachMatch invokes fn for every tuple with the given key.
	ForEachMatch(k tuple.Key, fn func(tuple.Payload))
	// Len returns the number of tuples stored.
	Len() int
	// SizeBytes returns the memory footprint of the structure, the
	// metric studied by Barber et al.
	SizeBytes() int64
}

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func checkCapacity(n int) {
	if n < 0 {
		panic(fmt.Sprintf("hashtable: negative capacity %d", n))
	}
}
