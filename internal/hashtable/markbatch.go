package hashtable

import (
	"math/bits"
	"sync/atomic"
	"unsafe"

	"mmjoin/internal/tuple"
)

// This file holds the batched match-tracking probe kernels: per table a
// LookupBatchMark that behaves exactly like LookupBatch (same AMAC-style
// interleaving, same first-match semantics, same output contract) and
// additionally sets the matched entry's build-side mark. The right/full
// outer joins probe through these and enumerate the never-marked entries
// with ForEachUnmatched afterwards; see mark.go for the tracking model.
//
// Marks are set with atomic OR so concurrent probe workers over a shared
// table need no coordination. The chained table's marks live inside the
// bucket meta words, so its kernel also loads meta atomically — a plain
// load racing with another worker's mark OR would be a data race even
// though the count bits it extracts are stable during the probe phase.
// All kernels are allocation-free and use the same scratch buffers as
// their unmarked counterparts.

// LookupBatchMark is LookupBatch plus build-side match tracking.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *ChainedTable) LookupBatchMark(keys []tuple.Key, s *BatchScratch, payloads []tuple.Payload, found []bool) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	ptrs := s.bucketBuf()
	lanes := s.laneBuf()
	slots := s.slotBuf()
	checkSpan(len(payloads), n)
	checkSpan(len(found), n)
	payloads = payloads[:n]
	found = found[:n]
	buckets := t.buckets
	if len(buckets) == 0 {
		clearBatchOutputs(payloads, found)
		return
	}
	mask := uint64(len(buckets) - 1)
	arena := t.arena
	pfd := prefetchDist()
	// Gather pass as in LookupBatch (including the pfd-ahead prefetch),
	// with an atomic meta load: other workers may be OR-ing mark bits
	// into the same word concurrently.
	for li := 0; li < n; li++ {
		if p := li + pfd; pfd > 0 && p < n {
			pf(unsafe.Pointer(&buckets[h[p&(BatchSize-1)]&mask]))
		}
		b := &buckets[h[li]&mask]
		ptrs[li] = b
		slots[li] = uint64(atomic.LoadUint32(&b.meta))
	}
	nn := 0
	for li := 0; li < n; li++ {
		b := ptrs[li]
		cnt := int(uint32(slots[li]) & chainedCountMask)
		payloads[li] = 0
		found[li] = false
		hit := false
		for i := 0; i < cnt; i++ {
			if b.tuples[i&(chainedBucketTuples-1)].Key == keys[li] {
				payloads[li] = b.tuples[i&(chainedBucketTuples-1)].Payload
				found[li] = true
				atomic.OrUint32(&b.meta, chainedMarkBit0<<uint(i))
				hit = true
				break
			}
		}
		if nx := b.next; !hit && nx != 0 {
			//mmjoin:allow(perfgate) nx is a 1-based link into the overflow arena, in range by construction; prove cannot see the link invariant
			nb := &arena[nx-1]
			if pfd > 0 {
				pf(unsafe.Pointer(nb))
			}
			ptrs[li] = nb
			lanes[nn&(BatchSize-1)] = int32(li)
			nn++
		}
	}
	// See ChainedTable.LookupBatch for the lane re-bound idiom.
	for nn > 0 {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			b := ptrs[li]
			cnt := int(atomic.LoadUint32(&b.meta) & chainedCountMask)
			hit := false
			for i := 0; i < cnt; i++ {
				if b.tuples[i&(chainedBucketTuples-1)].Key == keys[li] {
					payloads[li] = b.tuples[i&(chainedBucketTuples-1)].Payload
					found[li] = true
					atomic.OrUint32(&b.meta, chainedMarkBit0<<uint(i))
					hit = true
					break
				}
			}
			if nx := b.next; !hit && nx != 0 {
				//mmjoin:allow(perfgate) nx is a 1-based link into the overflow arena, in range by construction; prove cannot see the link invariant
				nb := &arena[nx-1]
				if pfd > 0 {
					pf(unsafe.Pointer(nb))
				}
				ptrs[li] = nb
				lanes[na&(BatchSize-1)] = int32(li)
				na++
			}
		}
		nn = na
	}
}

// LookupBatchMark is LookupBatch plus build-side match tracking.
// Requires EnableMatchTracking.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *LinearTable) LookupBatchMark(keys []tuple.Key, s *BatchScratch, payloads []tuple.Payload, found []bool) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	slots := s.slotBuf()
	biased := s.keyBuf()
	lanes := s.laneBuf()
	curk := s.curkBuf()
	checkSpan(len(payloads), n)
	checkSpan(len(found), n)
	payloads = payloads[:n]
	found = found[:n]
	tk := t.keys
	if len(tk) == 0 {
		clearBatchOutputs(payloads, found)
		return
	}
	checkSpan(len(t.payloads), len(tk))
	tp := t.payloads[:len(tk)]
	mask := uint64(len(tk) - 1)
	for li := 0; li < n; li++ {
		i := h[li] & mask
		slots[li] = i
		curk[li] = tk[i&mask]
	}
	nn := 0
	for li := 0; li < n; li++ {
		cur := curk[li]
		bk := uint32(keys[li]) + 1
		payloads[li] = 0
		found[li] = false
		if cur == bk {
			i := slots[li] & mask
			payloads[li] = tp[i]
			found[li] = true
			//mmjoin:allow(perfgate) setMark's inlined word index i>>6 divides the slot invariant through a shift prove cannot follow
			setMark(t.matched, int(i))
			continue
		}
		if cur == 0 {
			continue
		}
		slots[li] = (slots[li] + 1) & mask
		biased[li] = bk
		lanes[nn&(BatchSize-1)] = int32(li)
		nn++
	}
	for round := uint64(0); nn > 0 && round < mask; round++ {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			i := slots[li] & mask
			cur := tk[i&mask]
			if cur == biased[li] {
				payloads[li] = tp[i&mask]
				found[li] = true
				//mmjoin:allow(perfgate) setMark's inlined word index i>>6 divides the slot invariant through a shift prove cannot follow
				setMark(t.matched, int(i))
				continue
			}
			if cur == 0 {
				continue
			}
			slots[li] = (i + 1) & mask
			lanes[na&(BatchSize-1)] = int32(li)
			na++
		}
		nn = na
	}
}

// LookupBatchMark is LookupBatch plus build-side match tracking.
// Requires EnableMatchTracking.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *RobinHoodTable) LookupBatchMark(keys []tuple.Key, s *BatchScratch, payloads []tuple.Payload, found []bool) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	slots := s.slotBuf()
	biased := s.keyBuf()
	dists := s.distBuf()
	lanes := s.laneBuf()
	curk := s.curkBuf()
	checkSpan(len(payloads), n)
	checkSpan(len(found), n)
	payloads = payloads[:n]
	found = found[:n]
	tk := t.keys
	if len(tk) == 0 {
		clearBatchOutputs(payloads, found)
		return
	}
	checkSpan(len(t.payloads), len(tk))
	checkSpan(len(t.dist), len(tk))
	tp := t.payloads[:len(tk)]
	td := t.dist[:len(tk)]
	mask := uint64(len(tk) - 1)
	for li := 0; li < n; li++ {
		i := h[li] & mask
		slots[li] = i
		curk[li] = tk[i&mask]
	}
	nn := 0
	for li := 0; li < n; li++ {
		cur := curk[li]
		bk := uint32(keys[li]) + 1
		payloads[li] = 0
		found[li] = false
		if cur == bk {
			i := slots[li] & mask
			payloads[li] = tp[i]
			found[li] = true
			//mmjoin:allow(perfgate) setMark's inlined word index i>>6 divides the slot invariant through a shift prove cannot follow
			setMark(t.matched, int(i))
			continue
		}
		if cur == 0 {
			continue
		}
		slots[li] = (slots[li] + 1) & mask
		biased[li] = bk
		dists[li] = 1
		lanes[nn&(BatchSize-1)] = int32(li)
		nn++
	}
	for round := uint64(0); nn > 0 && round < mask; round++ {
		na := 0
		for a := 0; a < nn; a++ {
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			i := slots[li] & mask
			cur := tk[i&mask]
			if cur == 0 {
				continue
			}
			if cur == biased[li] {
				payloads[li] = tp[i&mask]
				found[li] = true
				//mmjoin:allow(perfgate) setMark's inlined word index i>>6 divides the slot invariant through a shift prove cannot follow
				setMark(t.matched, int(i))
				continue
			}
			d := dists[li]
			if td[i&mask] < d {
				continue
			}
			slots[li] = (i + 1) & mask
			if d < 255 {
				dists[li] = d + 1
			}
			lanes[na&(BatchSize-1)] = int32(li)
			na++
		}
		nn = na
	}
}

// LookupBatchMark is LookupBatch plus build-side match tracking.
// Requires EnableMatchTracking.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *ArrayTable) LookupBatchMark(keys []tuple.Key, _ *BatchScratch, payloads []tuple.Payload, found []bool) {
	n := len(keys)
	checkBatch(n)
	pl := t.payloads
	pres := t.present
	checkSpan(len(payloads), n)
	checkSpan(len(found), n)
	payloads = payloads[:n]
	found = found[:n]
	for li := 0; li < n; li++ {
		i := int(keys[li] - t.base)
		//mmjoin:allow(perfgate) the domain guard bounds i against len(pl); prove cannot divide that invariant through i>>6 for the presence word
		if uint(i) >= uint(len(pl)) || pres[i>>6]&(1<<uint(i&63)) == 0 {
			payloads[li] = 0
			found[li] = false
			continue
		}
		payloads[li] = pl[i]
		found[li] = true
		//mmjoin:allow(perfgate) setMark's inlined word index i>>6 divides the domain guard through a shift prove cannot follow
		setMark(t.matched, i)
	}
}

// LookupBatchMark is LookupBatch plus build-side match tracking across
// the dense array and the flattened overflow index. Requires
// EnableMatchTracking.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *CHT) LookupBatchMark(keys []tuple.Key, s *BatchScratch, payloads []tuple.Payload, found []bool) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	slots := s.slotBuf()
	lanes := s.laneBuf()
	checkSpan(len(payloads), n)
	checkSpan(len(found), n)
	payloads = payloads[:n]
	found = found[:n]
	groups := t.groups
	if len(groups) == 0 {
		clearBatchOutputs(payloads, found)
		return
	}
	array := t.array
	mask := t.mask
	bucketCount := mask + 1
	for li := 0; li < n; li++ {
		h[li] &= mask
		slots[li] = h[li]
		lanes[li] = int32(li)
		payloads[li] = 0
		found[li] = false
	}
	nn := n
	for nn > 0 {
		na := 0
		for a := 0; a < nn; a++ {
			// See ChainedTable.LookupBatch for the lane re-bound idiom.
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			pos := slots[li]
			if pos >= bucketCount || pos-h[li] >= chtMaxDisplacement {
				continue
			}
			g := &groups[(pos>>5)&uint64(len(groups)-1)]
			off := uint(pos & 31)
			if g.bits&(1<<off) == 0 {
				continue
			}
			idx := int(g.prefix) + bits.OnesCount32(g.bits&((1<<off)-1))
			//mmjoin:allow(perfgate) idx is a popcount rank into the dense array; the invariant lives in the structure, not in anything prove can see
			if array[idx].Key == keys[li] {
				//mmjoin:allow(perfgate) same popcount-rank invariant as the key probe above
				payloads[li] = array[idx].Payload
				found[li] = true
				//mmjoin:allow(perfgate) setMark's inlined word index idx>>6 carries the popcount-rank invariant prove cannot see
				setMark(t.matched, idx)
				continue
			}
			slots[li] = pos + 1
			lanes[na&(BatchSize-1)] = int32(li)
			na++
		}
		nn = na
	}
	if len(t.overflow) > 0 {
		for li := 0; li < n; li++ {
			if found[li] {
				continue
			}
			if ps := t.overflow[keys[li]]; len(ps) > 0 {
				payloads[li] = ps[0]
				found[li] = true
				//mmjoin:allow(perfgate) markOverflow inlines setMark; the ovIdx map lookup bounds the mark index, not anything prove models
				t.markOverflow(keys[li])
			}
		}
	}
}

// LookupBatchMark is LookupBatch plus build-side match tracking.
// Requires EnableMatchTracking on a static table.
//
//mmjoin:hotpath
//mmjoin:noescape
//mmjoin:bce
func (t *SparseTable) LookupBatchMark(keys []tuple.Key, s *BatchScratch, payloads []tuple.Payload, found []bool) {
	n := len(keys)
	checkBatch(n)
	h := s.hashBuf()
	t.hashB(h[:n], keys)
	slots := s.slotBuf()
	lanes := s.laneBuf()
	checkSpan(len(payloads), n)
	checkSpan(len(found), n)
	payloads = payloads[:n]
	found = found[:n]
	groups := t.groups
	if len(groups) == 0 {
		clearBatchOutputs(payloads, found)
		return
	}
	mask := t.mask
	for li := 0; li < n; li++ {
		slots[li] = (h[li] * sparseBucketsPerTuple) & mask
		lanes[li] = int32(li)
		payloads[li] = 0
		found[li] = false
	}
	nn := n
	for round := uint64(0); nn > 0 && round <= mask; round++ {
		na := 0
		for a := 0; a < nn; a++ {
			// See ChainedTable.LookupBatch for the lane re-bound idiom.
			li := int(lanes[a&(BatchSize-1)])
			if uint(li) >= uint(n) {
				continue
			}
			pos := slots[li]
			gi := (pos >> 5) & uint64(len(groups)-1)
			g := &groups[gi]
			off := uint(pos & 31)
			if g.bits&(1<<off) == 0 {
				continue
			}
			idx := g.denseIndex(off)
			//mmjoin:allow(perfgate) idx is a popcount rank into the group's dense slice; prove cannot see the bitmap invariant
			if e := g.dense[idx]; e.Key == keys[li] {
				payloads[li] = e.Payload
				found[li] = true
				//mmjoin:allow(perfgate) len(t.bases) == len(groups) by construction; prove cannot relate the two lengths through gi
				setMark(t.matched, int(t.bases[gi])+idx)
				continue
			}
			slots[li] = (pos + 1) & mask
			lanes[na&(BatchSize-1)] = int32(li)
			na++
		}
		nn = na
	}
}
