package hashtable

import (
	"unsafe"

	"mmjoin/internal/prefetch"
)

// PrefetchDist is the software-prefetch look-ahead distance, in lanes,
// of the batch kernels' gather passes: while resolving lane li, the
// kernel issues a prefetch hint for lane li+PrefetchDist's first
// table access, and chain-walking rounds prefetch a surviving lane's
// next bucket the moment its link is read. The AMAC-style interleaving
// already overlaps misses up to the core's out-of-order window; the
// explicit prefetch extends that overlap beyond it. 0 disables all
// prefetching. The default was picked by the prefetch-distance sweep in
// the offheap experiment (joinbench -microbench -microdists); it is a
// plain package variable so the sweep can re-point it between runs —
// do not change it concurrently with running kernels.
var PrefetchDist = 8

// prefetchDist resolves the effective distance: 0 on architectures
// without a prefetch instruction, so the kernels' prefetch branches
// fold to dead code there.
//
//mmjoin:hotpath
//mmjoin:inline
func prefetchDist() int {
	if !prefetch.Supported {
		return 0
	}
	return PrefetchDist
}

// pf issues a T0 (all cache levels) prefetch hint for p. A hint only:
// it never faults, so any address — including one the lane will
// abandon — is safe to pass.
//
//mmjoin:hotpath
//mmjoin:inline
func pf(p unsafe.Pointer) { prefetch.T0(p) }
