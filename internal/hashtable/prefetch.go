package hashtable

import (
	"sync/atomic"
	"unsafe"

	"mmjoin/internal/prefetch"
)

// prefetchDistV is the software-prefetch look-ahead distance, in lanes,
// of the batch kernels' gather passes: while resolving lane li, the
// kernel issues a prefetch hint for lane li+distance's first table
// access, and chain-walking rounds prefetch a surviving lane's next
// bucket the moment its link is read. The AMAC-style interleaving
// already overlaps misses up to the core's out-of-order window; the
// explicit prefetch extends that overlap beyond it. 0 disables all
// prefetching. The default was picked by the prefetch-distance sweep in
// the offheap experiment (joinbench -microbench -microdists).
//
// The distance is stored atomically because it is a process-wide
// tunable read by kernels that may run on many concurrent queries at
// once (the joinserver workload): a sweep re-pointing a plain variable
// mid-flight would be a data race. Kernels read it once per batch call
// through prefetchDist(), so the atomic load is noise.
var prefetchDistV atomic.Int32

func init() { prefetchDistV.Store(8) }

// PrefetchDistance returns the current prefetch look-ahead distance.
func PrefetchDistance() int { return int(prefetchDistV.Load()) }

// SetPrefetchDistance re-points the prefetch look-ahead distance and
// returns the previous value. Safe to call concurrently with running
// kernels: in-flight batches finish under whichever distance they
// loaded, subsequent batches see the new one. Distances below zero are
// clamped to 0 (prefetching off).
func SetPrefetchDistance(d int) (prev int) {
	if d < 0 {
		d = 0
	}
	return int(prefetchDistV.Swap(int32(d)))
}

// prefetchDist resolves the effective distance: 0 on architectures
// without a prefetch instruction, so the kernels' prefetch branches
// fold to dead code there.
//
//mmjoin:hotpath
//mmjoin:inline
func prefetchDist() int {
	if !prefetch.Supported {
		return 0
	}
	return int(prefetchDistV.Load())
}

// pf issues a T0 (all cache levels) prefetch hint for p. A hint only:
// it never faults, so any address — including one the lane will
// abandon — is safe to pass.
//
//mmjoin:hotpath
//mmjoin:inline
func pf(p unsafe.Pointer) { prefetch.T0(p) }
