package hashtable

import "mmjoin/internal/tuple"

// Per-operation byte-traffic model of the table variants: the expected
// number of cache lines one build insert or one probe lookup touches,
// in bytes. These are the coefficients behind the paper's bandwidth
// arguments (Section 5's "bytes per output tuple"), used by the join
// drivers to attribute hot-loop traffic to the execution layer's
// per-phase byte counters (exec.Worker.AddBytes). They deliberately
// model the common case — one line for an open-addressing hit, bucket
// line plus overflow line for chaining — rather than tail behaviour.
const (
	// ChainedOpBytes: the bucket header line plus, on average, one
	// chased overflow line.
	ChainedOpBytes = 2 * tuple.CacheLineBytes
	// LinearOpBytes: one line covers the short probe sequences of a
	// half-full linear table.
	LinearOpBytes = tuple.CacheLineBytes
	// ArrayOpBytes: a single positional access.
	ArrayOpBytes = tuple.CacheLineBytes
	// CHTOpBytes: the bitmap word's line plus the dense payload line.
	CHTOpBytes = 2 * tuple.CacheLineBytes
)

// OpBytes returns the modeled per-operation traffic of the table.
func (t *ChainedTable) OpBytes() int64 { return ChainedOpBytes }

// OpBytes returns the modeled per-operation traffic of the table.
func (t *LinearTable) OpBytes() int64 { return LinearOpBytes }

// OpBytes returns the modeled per-operation traffic of the table.
func (t *ArrayTable) OpBytes() int64 { return ArrayOpBytes }

// OpBytes returns the modeled per-operation traffic of the table.
func (t *CHT) OpBytes() int64 { return CHTOpBytes }
