package hashtable

import (
	"testing"

	"mmjoin/internal/hashfn"
	"mmjoin/internal/tuple"
)

// Regression test for the stale-output bug in the LookupBatch
// empty-table early exits: the output arrays are worker scratch reused
// across batches, so a kernel that returns without writing them replays
// the previous batch's hits as phantom matches. Every table kind's
// LookupBatch must write all n output lanes even when the backing
// arrays are empty.
func TestLookupBatchEmptyTableClearsOutputs(t *testing.T) {
	// Construct each kind, then strip its backing storage to reach the
	// empty-table guard (the constructors always allocate at least one
	// slot, so the guard is otherwise unreachable from fresh tables).
	ct := NewChainedTable(4, nil)
	ct.buckets = nil
	lt := NewLinearTable(4, nil)
	lt.keys = nil
	rh := NewRobinHoodTable(4, 0, nil)
	rh.keys = nil
	cht := BuildCHT(nil, hashfn.Identity)
	cht.groups = nil
	st := NewSparseTable(4, nil)
	st.groups = nil

	tables := map[string]interface {
		LookupBatch(keys []tuple.Key, s *BatchScratch, payloads []tuple.Payload, found []bool)
	}{
		"chained": ct, "linear": lt, "robinhood": rh, "cht": cht, "sparse": st,
	}
	for name, tbl := range tables {
		t.Run(name, func(t *testing.T) {
			s := &BatchScratch{}
			n := 8
			keys := make([]tuple.Key, n)
			payloads := make([]tuple.Payload, n)
			found := make([]bool, n)
			// Simulate a previous batch's results left in the scratch.
			for i := range found {
				found[i] = true
				payloads[i] = 99
			}
			tbl.LookupBatch(keys, s, payloads, found)
			for i := 0; i < n; i++ {
				if found[i] {
					t.Fatalf("lane %d: found=true from an empty table (stale scratch not cleared)", i)
				}
				if payloads[i] != 0 {
					t.Fatalf("lane %d: payload %d from an empty table", i, payloads[i])
				}
			}
		})
	}
}

// The same scenario through a realistic probe sequence: a batch against
// a populated table followed by one against an emptied table, with the
// scratch outputs shared — the second batch must not inherit the
// first's hits.
func TestLookupBatchEmptyAfterPopulated(t *testing.T) {
	full := NewChainedTable(8, nil)
	for i := 0; i < 8; i++ {
		full.Insert(tuple.Tuple{Key: tuple.Key(i), Payload: tuple.Payload(i + 1)})
	}
	empty := NewChainedTable(8, nil)
	empty.buckets = nil

	s := &BatchScratch{}
	keys := []tuple.Key{0, 1, 2, 3}
	payloads := make([]tuple.Payload, len(keys))
	found := make([]bool, len(keys))
	full.LookupBatch(keys, s, payloads, found)
	for i := range keys {
		if !found[i] {
			t.Fatalf("populated table: key %d not found", keys[i])
		}
	}
	empty.LookupBatch(keys, s, payloads, found)
	for i := range keys {
		if found[i] {
			t.Fatalf("empty table: key %d reported found (stale result of the previous batch)", keys[i])
		}
	}
}
