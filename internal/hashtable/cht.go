package hashtable

import (
	"math/bits"

	"mmjoin/internal/exec"
	"mmjoin/internal/hashfn"
	"mmjoin/internal/tuple"
)

// CHT is the Concise Hash Table of Barber et al. (PVLDB 2014). It packs
// all n tuples into a dense array A with no empty slots, and finds a
// tuple's array position through a bitmap over 8*n virtual buckets with
// interleaved population-count prefixes: a set bit at bucket b means the
// bucket is occupied, and the array index of its tuple is the number of
// set bits before b. The structure is static — bulk-loaded once, then
// probed — which is exactly the lifecycle of a join build side.
//
// Collisions are resolved by bounded linear probing in bitmap space;
// tuples whose displacement would exceed chtMaxDisplacement go to a small
// overflow table, as in the original design.
type CHT struct {
	groups   []chtGroup // one per 32 buckets: bitmap word + bit-prefix
	array    []tuple.Tuple
	overflow map[tuple.Key][]tuple.Payload
	mask     uint64 // bucketCount - 1
	hash     hashfn.Func
	hashB    hashfn.BatchFunc
	n        int

	// Match-tracking state (nil until EnableMatchTracking): a mark bitmap
	// over the dense array, plus a flattened index of the overflow map so
	// overflow hits can be marked without mutating the map during
	// concurrent probes.
	matched   []uint64
	ovKeys    []tuple.Key
	ovIdx     map[tuple.Key]int32
	ovMatched []uint64

	// Arena-backed storage (nil a means plain heap allocation): the
	// group array is viewed over a uint64 buffer kept in groupsRaw, the
	// dense array is drawn from the arena's tuple class. The overflow
	// map stays on the heap — it is empty for dense keys, and a Go map
	// cannot live off-heap anyway.
	a         *exec.Arena
	groupsRaw []uint64
}

// chtGroup interleaves 32 bitmap bits with the running population count
// of all preceding groups, mirroring the physically interleaved B/PC
// layout described in the paper (Section 3.2 of Schuh et al.).
type chtGroup struct {
	bits   uint32
	prefix uint32
}

// chtBucketsPerTuple is the bitmap over-provisioning factor: the paper's
// CHT uses a bitmap of size 8*n.
const chtBucketsPerTuple = 8

// chtMaxDisplacement bounds linear probing in bitmap space; longer runs
// spill to the overflow table. Two bitmap words is generous at the
// 1/8 fill grade of an 8*n bitmap.
const chtMaxDisplacement = 64

// BuildCHT bulk-loads a CHT from the relation on one thread. The
// parallel partitioned build used by the CHTJ join lives in CHTBuilder.
func BuildCHT(rel tuple.Relation, hash hashfn.Func) *CHT {
	b := NewCHTBuilder(len(rel), 1, hash)
	b.LoadRegion(0, rel)
	return b.Finalize()
}

// bucketOf returns the home bucket of a key.
func (t *CHT) bucketOf(k tuple.Key) uint64 { return t.hash(k) & t.mask }

// Lookup implements Table.
func (t *CHT) Lookup(k tuple.Key) (tuple.Payload, bool) {
	h := t.bucketOf(k)
	bucketCount := t.mask + 1
	for d := uint64(0); d < chtMaxDisplacement; d++ {
		pos := h + d
		if pos >= bucketCount {
			break
		}
		g := &t.groups[pos>>5]
		off := uint(pos & 31)
		if g.bits&(1<<off) == 0 {
			break
		}
		idx := int(g.prefix) + bits.OnesCount32(g.bits&((1<<off)-1))
		if t.array[idx].Key == k {
			return t.array[idx].Payload, true
		}
	}
	if len(t.overflow) > 0 {
		if ps := t.overflow[k]; len(ps) > 0 {
			return ps[0], true
		}
	}
	return 0, false
}

// ForEachMatch implements Table.
func (t *CHT) ForEachMatch(k tuple.Key, fn func(tuple.Payload)) {
	h := t.bucketOf(k)
	bucketCount := t.mask + 1
	for d := uint64(0); d < chtMaxDisplacement; d++ {
		pos := h + d
		if pos >= bucketCount {
			break // run hit the bitmap end
		}
		g := &t.groups[pos>>5]
		off := uint(pos & 31)
		if g.bits&(1<<off) == 0 {
			break // first empty bucket terminates the probe run
		}
		idx := int(g.prefix) + bits.OnesCount32(g.bits&((1<<off)-1))
		if t.array[idx].Key == k {
			fn(t.array[idx].Payload)
		}
	}
	// Tuples displaced past a region boundary or the displacement bound
	// live in the overflow table; with dense keys it is empty and this
	// is a single length check.
	if len(t.overflow) > 0 {
		for _, p := range t.overflow[k] {
			fn(p)
		}
	}
}

// Len implements Table.
func (t *CHT) Len() int { return t.n }

// SizeBytes implements Table. The bitmap+prefix structure costs 8 bytes
// per 32 buckets plus the dense tuple array — the memory frugality that
// motivated the design.
func (t *CHT) SizeBytes() int64 {
	return int64(len(t.groups))*8 + int64(len(t.array))*tuple.Bytes
}

// Free returns arena-drawn storage to the arena; the table must not be
// used afterwards. A no-op for heap-backed tables and idempotent.
func (t *CHT) Free() {
	if t.a == nil {
		return
	}
	if t.groupsRaw != nil {
		t.a.PutUint64s(t.groupsRaw)
		t.groupsRaw = nil
		t.groups = nil
	}
	if t.array != nil {
		t.a.PutTuples(t.array)
		t.array = nil
	}
}

// OverflowLen reports how many tuples spilled past the displacement
// bound (diagnostics and tests).
func (t *CHT) OverflowLen() int {
	n := 0
	for _, ps := range t.overflow {
		n += len(ps)
	}
	return n
}

// CHTBuilder constructs a CHT in parallel over disjoint bitmap regions:
// the CHTJ join radix-partitions the build side by bucket prefix so that
// each worker bulk-loads one contiguous region without synchronization
// (Section 3.2). Region boundaries are aligned to 32-bucket groups.
type CHTBuilder struct {
	table     *CHT
	regions   int
	perRegion [][]tuple.Tuple // placed tuples per region, in bucket order
	spilled   [][]tuple.Tuple // overflow tuples per region
}

// NewCHTBuilder prepares a builder for n tuples loaded via `regions`
// disjoint regions. regions must be a power of two so regions align with
// bitmap groups; it is clamped to keep each region at least one group
// wide.
func NewCHTBuilder(n, regions int, hash hashfn.Func) *CHTBuilder {
	return NewCHTBuilderArena(n, regions, hash, nil)
}

// NewCHTBuilderArena is NewCHTBuilder with the finished table's bitmap
// groups and dense array drawn from the arena (possibly off-heap; both
// are pointer-free). The caller owns the storage and must call the
// table's Free when done; a nil arena gives plain heap allocation.
func NewCHTBuilderArena(n, regions int, hash hashfn.Func, a *exec.Arena) *CHTBuilder {
	checkCapacity(n)
	if hash == nil {
		hash = hashfn.Identity
	}
	bucketCount := NextPow2(n) * chtBucketsPerTuple
	if bucketCount < 32 {
		bucketCount = 32
	}
	groupCount := bucketCount / 32
	regions = NextPow2(regions)
	if regions < 1 {
		regions = 1
	}
	for regions > groupCount {
		regions >>= 1
	}
	t := &CHT{
		overflow: make(map[tuple.Key][]tuple.Payload),
		mask:     uint64(bucketCount - 1),
		hash:     hash,
		hashB:    hashfn.BatchFor(hash),
		a:        a,
	}
	if a != nil {
		t.groupsRaw = a.Uint64s(groupCount) // zeroed per contract
		t.groups = groupsFrom(t.groupsRaw, groupCount)
		// Tuples are handed out with arbitrary contents, which is fine:
		// the dense array is append-only up to n, never read past len.
		t.array = a.Tuples(n)[:0]
	} else {
		t.groups = make([]chtGroup, groupCount)
		t.array = make([]tuple.Tuple, 0, n)
	}
	return &CHTBuilder{
		table:     t,
		regions:   regions,
		perRegion: make([][]tuple.Tuple, regions),
		spilled:   make([][]tuple.Tuple, regions),
	}
}

// Regions returns the actual region count after alignment clamping.
func (b *CHTBuilder) Regions() int { return b.regions }

// Free releases the under-construction table's arena storage. Because
// Finalize returns the same *CHT the builder owns, a deferred
// builder.Free() also covers the finalized table (Free is idempotent),
// so join error paths before and after Finalize need only one call.
func (b *CHTBuilder) Free() { b.table.Free() }

// RegionOf returns the region index a key's bucket falls into; the CHTJ
// join uses it to partition the build side before calling LoadRegion.
func (b *CHTBuilder) RegionOf(k tuple.Key) int {
	bucketCount := b.table.mask + 1
	return int(b.table.bucketOf(k) * uint64(b.regions) / bucketCount)
}

// LoadRegion places all tuples of one region into the region's bitmap
// range. Every tuple must satisfy RegionOf(t.Key) == region. Safe to call
// concurrently for distinct regions.
func (b *CHTBuilder) LoadRegion(region int, tuples []tuple.Tuple) {
	t := b.table
	bucketCount := t.mask + 1
	lo := uint64(region) * bucketCount / uint64(b.regions)
	hi := uint64(region+1) * bucketCount / uint64(b.regions)

	// Canonical linear-probing placement: process tuples in home-bucket
	// order and assign each the first free bucket at or after its home.
	// Bucket order is established with an LSD radix sort — comparison
	// sorting here would dominate the whole bulkload.
	ordered := radixSortByBucket(tuples, t.bucketOf, bucketCount)

	placed := make([]tuple.Tuple, 0, len(ordered))
	next := lo
	for _, tp := range ordered {
		home := t.bucketOf(tp.Key)
		pos := home
		if next > pos {
			pos = next
		}
		if pos >= hi || pos-home >= chtMaxDisplacement {
			b.spilled[region] = append(b.spilled[region], tp)
			continue
		}
		g := &t.groups[pos>>5]
		g.bits |= 1 << uint(pos&31)
		placed = append(placed, tp)
		next = pos + 1
	}
	b.perRegion[region] = placed
}

// radixSortByBucket returns the tuples ordered by their home bucket,
// using an 11-bit-per-pass LSD radix sort over the bucket values.
func radixSortByBucket(tuples []tuple.Tuple, bucketOf func(tuple.Key) uint64, bucketCount uint64) []tuple.Tuple {
	const passBits = 11
	const radix = 1 << passBits
	n := len(tuples)
	src := make([]tuple.Tuple, n)
	copy(src, tuples)
	if n < 2 {
		return src
	}
	dst := make([]tuple.Tuple, n)
	for shift := uint(0); uint64(1)<<shift < bucketCount; shift += passBits {
		var counts [radix]int
		for _, tp := range src {
			counts[(bucketOf(tp.Key)>>shift)&(radix-1)]++
		}
		pos := 0
		var starts [radix]int
		for d := 0; d < radix; d++ {
			starts[d] = pos
			pos += counts[d]
		}
		for _, tp := range src {
			d := (bucketOf(tp.Key) >> shift) & (radix - 1)
			dst[starts[d]] = tp
			starts[d]++
		}
		src, dst = dst, src
	}
	return src
}

// Finalize computes the population-count prefixes, concatenates the
// region arrays into the dense tuple array, merges overflow, and returns
// the finished table. Must be called once after all LoadRegion calls.
func (b *CHTBuilder) Finalize() *CHT {
	t := b.table
	var running uint32
	for i := range t.groups {
		t.groups[i].prefix = running
		running += uint32(bits.OnesCount32(t.groups[i].bits))
	}
	for _, region := range b.perRegion {
		t.array = append(t.array, region...)
	}
	for _, sp := range b.spilled {
		for _, tp := range sp {
			t.overflow[tp.Key] = append(t.overflow[tp.Key], tp.Payload)
		}
	}
	t.n = len(t.array)
	for _, ps := range t.overflow {
		t.n += len(ps)
	}
	return t
}
