package hashtable

import (
	"math/rand"
	"testing"

	"mmjoin/internal/hashfn"
	"mmjoin/internal/tuple"
)

// batchTable is the common surface of the batch kernels used by the
// equivalence tests (build varies per table kind, probing does not).
type batchTable interface {
	Table
	LookupBatch(keys []tuple.Key, s *BatchScratch, payloads []tuple.Payload, found []bool)
	ProbeJoinBatch(keys []tuple.Key, probePayloads []tuple.Payload, s *BatchScratch, out *MatchBatch)
}

// buildBatchTables constructs every table kind over the given tuples
// using the scalar insert paths, so the batch probe kernels are
// checked against independently built tables.
func buildBatchTables(tb testing.TB, tuples []tuple.Tuple, domain int, hash hashfn.Func) map[string]batchTable {
	tb.Helper()
	ct := NewChainedTable(max(len(tuples), 1), hash)
	lt := NewLinearTable(max(len(tuples), 1), hash)
	rh := NewRobinHoodTable(max(len(tuples), 1), 0, hash)
	at := NewArrayTable(0, domain)
	st := NewSparseTable(max(len(tuples), 1), hash)
	for _, tp := range tuples {
		ct.Insert(tp)
		lt.Insert(tp)
		rh.Insert(tp)
		at.Insert(tp)
		st.Insert(tp)
	}
	cht := BuildCHT(tuples, hash)
	return map[string]batchTable{
		"chained": ct, "linear": lt, "robinhood": rh,
		"array": at, "cht": cht, "sparse": st,
	}
}

// batchKeySets returns named probe key sets over a build of n dense or
// hole-heavy keys: all hits, miss-heavy (most probes outside the built
// key set) and boundary-length batches.
func batchKeySets(n, domain int, rng *rand.Rand) map[string][]tuple.Key {
	hits := make([]tuple.Key, n)
	for i := range hits {
		hits[i] = tuple.Key(rng.Intn(domain))
	}
	missHeavy := make([]tuple.Key, n)
	for i := range missHeavy {
		// ~7 of 8 probes land outside the domain.
		missHeavy[i] = tuple.Key(rng.Intn(domain * 8))
	}
	sets := map[string][]tuple.Key{
		"hits":      hits,
		"missheavy": missHeavy,
		"empty":     {},
		"one":       hits[:min(1, n)],
	}
	for _, l := range []int{BatchSize - 1, BatchSize, BatchSize + 1} {
		if l <= n {
			sets[sizeName(l)] = missHeavy[:l]
		}
	}
	return sets
}

func sizeName(l int) string {
	switch l {
	case BatchSize - 1:
		return "batchminus1"
	case BatchSize:
		return "batchexact"
	default:
		return "batchplus1"
	}
}

// runBatched feeds keys to a batch kernel in BatchSize chunks.
func runBatched(n int, fn func(lo, hi int)) {
	for lo := 0; lo < n; lo += BatchSize {
		fn(lo, min(lo+BatchSize, n))
	}
}

// TestLookupBatchMatchesLookup checks LookupBatch against scalar Lookup
// for every table kind across dense, hole-heavy and miss-heavy key
// sets, including batch-boundary lengths.
func TestLookupBatchMatchesLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, build := range []struct {
		name   string
		stride int // key stride; >1 leaves holes in the domain
	}{
		{"dense", 1},
		{"holeheavy", 7},
	} {
		t.Run(build.name, func(t *testing.T) {
			const n = 1 << 12
			domain := n * build.stride
			tuples := make([]tuple.Tuple, n)
			for i := range tuples {
				tuples[i] = tuple.Tuple{Key: tuple.Key(i * build.stride), Payload: tuple.Payload(i*3 + 1)}
			}
			tables := buildBatchTables(t, tuples, domain, hashfn.Murmur)
			for setName, keys := range batchKeySets(n, domain, rng) {
				for tblName, tbl := range tables {
					var s BatchScratch
					payloads := make([]tuple.Payload, len(keys))
					found := make([]bool, len(keys))
					runBatched(len(keys), func(lo, hi int) {
						tbl.LookupBatch(keys[lo:hi], &s, payloads[lo:hi], found[lo:hi])
					})
					for i, k := range keys {
						wantP, wantOK := tbl.Lookup(k)
						if found[i] != wantOK || payloads[i] != wantP {
							t.Fatalf("%s/%s: key %d lane %d: batch = %d,%v scalar = %d,%v",
								tblName, setName, k, i, payloads[i], found[i], wantP, wantOK)
						}
					}
				}
			}
		})
	}
}

// TestProbeJoinBatchMatchesScalarProbe checks the fused probe kernel
// against a scalar Lookup loop: same match count and same
// order-independent checksum of emitted payload pairs.
func TestProbeJoinBatchMatchesScalarProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 1 << 12
	tuples := make([]tuple.Tuple, n)
	for i := range tuples {
		tuples[i] = tuple.Tuple{Key: tuple.Key(i), Payload: tuple.Payload(2*i + 5)}
	}
	tables := buildBatchTables(t, tuples, n, hashfn.Multiplicative)
	for setName, keys := range batchKeySets(n, n, rng) {
		probePayloads := make([]tuple.Payload, len(keys))
		for i := range probePayloads {
			probePayloads[i] = tuple.Payload(i)
		}
		for tblName, tbl := range tables {
			var wantMatches int
			var wantSum uint64
			for i, k := range keys {
				if p, ok := tbl.Lookup(k); ok {
					wantMatches++
					wantSum += uint64(p)<<32 | uint64(probePayloads[i])
				}
			}
			var s BatchScratch
			var out MatchBatch
			var gotMatches int
			var gotSum uint64
			runBatched(len(keys), func(lo, hi int) {
				tbl.ProbeJoinBatch(keys[lo:hi], probePayloads[lo:hi], &s, &out)
				if out.N > hi-lo {
					t.Fatalf("%s/%s: out.N = %d exceeds batch length %d", tblName, setName, out.N, hi-lo)
				}
				for i := 0; i < out.N; i++ {
					gotSum += uint64(out.Build[i])<<32 | uint64(out.Probe[i])
				}
				gotMatches += out.N
			})
			if gotMatches != wantMatches || gotSum != wantSum {
				t.Fatalf("%s/%s: batch probe = %d matches sum %x, scalar = %d matches sum %x",
					tblName, setName, gotMatches, gotSum, wantMatches, wantSum)
			}
		}
	}
}

// TestBuildBatchMatchesInsert builds one table per kind through the
// batch kernels and compares every lookup against a scalar-built twin.
func TestBuildBatchMatchesInsert(t *testing.T) {
	const n = 5000 // not a multiple of BatchSize
	tuples := make([]tuple.Tuple, n)
	keys := make([]tuple.Key, n)
	payloads := make([]tuple.Payload, n)
	for i := range tuples {
		k := tuple.Key(i * 3) // holes between keys
		tuples[i] = tuple.Tuple{Key: k, Payload: tuple.Payload(i + 7)}
		keys[i] = k
		payloads[i] = tuple.Payload(i + 7)
	}
	domain := n * 3
	hash := hashfn.Murmur

	var s BatchScratch
	ct := NewChainedTable(n, hash)
	lt := NewLinearTable(n, hash)
	rh := NewRobinHoodTable(n, 0, hash)
	at := NewArrayTable(0, domain)
	st := NewSparseTable(n, hash)
	runBatched(n, func(lo, hi int) {
		ct.BuildBatch(keys[lo:hi], payloads[lo:hi], &s)
		lt.BuildBatch(keys[lo:hi], payloads[lo:hi], &s)
		rh.BuildBatch(keys[lo:hi], payloads[lo:hi], &s)
		at.BuildBatch(keys[lo:hi], payloads[lo:hi], &s)
		st.BuildBatch(keys[lo:hi], payloads[lo:hi], &s)
	})
	got := map[string]batchTable{"chained": ct, "linear": lt, "robinhood": rh, "array": at, "sparse": st}
	want := buildBatchTables(t, tuples, domain, hash)
	for name, g := range got {
		w := want[name]
		if g.Len() != w.Len() {
			t.Fatalf("%s: batch build len = %d, scalar = %d", name, g.Len(), w.Len())
		}
		for k := tuple.Key(0); int(k) < domain; k++ {
			gp, gok := g.Lookup(k)
			wp, wok := w.Lookup(k)
			if gp != wp || gok != wok {
				t.Fatalf("%s: Lookup(%d) batch-built = %d,%v scalar-built = %d,%v", name, k, gp, gok, wp, wok)
			}
		}
	}
}

// TestBuildBatchConcurrentMatchesInsert exercises the latched/CAS batch
// build kernels single-threaded (the concurrency protocol itself is
// covered by the scalar concurrent tests and the race detector runs).
func TestBuildBatchConcurrentMatchesInsert(t *testing.T) {
	const n = 3000
	keys := make([]tuple.Key, n)
	payloads := make([]tuple.Payload, n)
	for i := range keys {
		keys[i] = tuple.Key(i)
		payloads[i] = tuple.Payload(i * 5)
	}
	var s BatchScratch
	ct := NewChainedTable(n, hashfn.Multiplicative)
	ct.PrepareConcurrent()
	lt := NewLinearTable(n, hashfn.Multiplicative)
	at := NewArrayTable(0, n)
	runBatched(n, func(lo, hi int) {
		ct.BuildBatchConcurrent(keys[lo:hi], payloads[lo:hi], &s)
		lt.BuildBatchConcurrent(keys[lo:hi], payloads[lo:hi], &s)
		at.BuildBatchConcurrent(keys[lo:hi], payloads[lo:hi], &s)
	})
	ct.FinishConcurrentBuild()
	at.FinishConcurrentBuild()
	for name, tbl := range map[string]Table{"chained": ct, "linear": lt, "array": at} {
		if tbl.Len() != n {
			t.Fatalf("%s: len = %d, want %d", name, tbl.Len(), n)
		}
		for i := 0; i < n; i++ {
			p, ok := tbl.Lookup(tuple.Key(i))
			if !ok || p != tuple.Payload(i*5) {
				t.Fatalf("%s: Lookup(%d) = %d,%v", name, i, p, ok)
			}
		}
	}
}

// TestChainedResetRebuildAllocationFree verifies the Reset contract:
// after Reset, rebuilding the same data reuses the head buckets and the
// full overflow arena without a single allocation, and no stale chain
// from the previous build is reachable.
func TestChainedResetRebuildAllocationFree(t *testing.T) {
	const n = 4096
	// All keys collide into few buckets so the overflow arena is used
	// heavily: table sized for 64 tuples, fed 4096.
	ct := NewChainedTable(64, hashfn.Multiplicative)
	ct.ReserveOverflow(n) // ample; exact need is below n
	tuples := denseTuples(n)
	build := func() {
		for _, tp := range tuples {
			ct.Insert(tp)
		}
	}
	build()
	arenaUsed := len(ct.arena)
	if arenaUsed == 0 {
		t.Fatal("test is vacuous: no overflow buckets were used")
	}
	allocs := testing.AllocsPerRun(10, func() {
		ct.Reset()
		build()
	})
	if allocs != 0 {
		t.Fatalf("Reset+rebuild allocated %v times per run, want 0", allocs)
	}
	if len(ct.arena) != arenaUsed {
		t.Fatalf("rebuild used %d overflow buckets, first build used %d", len(ct.arena), arenaUsed)
	}
	if ct.Len() != n {
		t.Fatalf("len after rebuild = %d, want %d", ct.Len(), n)
	}
	for _, tp := range tuples {
		if p, ok := ct.Lookup(tp.Key); !ok || p != tp.Payload {
			t.Fatalf("Lookup(%d) after rebuild = %d,%v, want %d,true", tp.Key, p, ok, tp.Payload)
		}
	}
	// After a Reset every head bucket must be fully detached.
	ct.Reset()
	if ct.Len() != 0 {
		t.Fatalf("len after Reset = %d, want 0", ct.Len())
	}
	for i := range ct.buckets {
		if ct.buckets[i].meta != 0 || ct.buckets[i].next != 0 {
			t.Fatalf("bucket %d not cleared by Reset", i)
		}
	}
	for i := range ct.arena[:cap(ct.arena)] {
		b := &ct.arena[:cap(ct.arena)][i]
		if b.meta != 0 || b.next != 0 {
			t.Fatalf("arena slot %d keeps stale state after Reset", i)
		}
	}
}
