//go:build amd64

// Package prefetch exposes the CPU's software-prefetch instruction to
// the AMAC batch kernels. A prefetch is a hint, never a fault: issuing
// one on any address (even unmapped) is architecturally safe, so the
// kernels can prefetch `dist` lanes ahead without bounds anxiety.
//
// The function is assembly because Go has no intrinsic for PREFETCHT0
// and a plain dereference would be a demand load — a stall, the exact
// thing the batch pipeline exists to avoid. The //go:noescape
// declaration keeps the argument off the heap, so calls inside
// //mmjoin:noescape regions stay clean under the perfgate analyzer, and
// assembly is invisible to the race detector, so concurrent builds can
// prefetch each other's cache lines without report noise.
package prefetch

import "unsafe"

// Supported is true when T0 compiles to a real prefetch. Kernels guard
// with `if prefetch.Supported && dist > 0` so the whole pipeline folds
// away on other architectures.
const Supported = true

// T0 prefetches the cache line containing p into all cache levels
// (PREFETCHT0).
//
//go:noescape
func T0(p unsafe.Pointer)
