//go:build !amd64

package prefetch

import "unsafe"

// Supported is false: T0 is a no-op the compiler eliminates.
const Supported = false

// T0 is a no-op on architectures without a wired prefetch instruction.
func T0(p unsafe.Pointer) {}
