// Package numa models the NUMA topology of the paper's evaluation
// machine (four Intel Xeon E7-4870 v2 sockets) on hardware that has no
// NUMA: it tracks *where* every memory region would live and *how many*
// bytes each (cpu node, memory node) pair moves, so that the
// discrete-event simulator in internal/numasim can replay the paper's
// bandwidth behaviour from real access profiles.
//
// The placement policies mirror Section 6: join inputs and working
// memory are allocated in equal node-sized chunks across all regions
// ("one quarter of each input relation is physically allocated on one of
// the NUMA-regions"), while the NOP global hash table is page-interleaved
// (Section 3.2, "interleave hash table allocation among all available
// NUMA nodes").
package numa

import "fmt"

// Topology is a NUMA machine shape.
type Topology struct {
	// Nodes is the number of NUMA nodes (sockets).
	Nodes int
	// CoresPerNode is the number of physical cores per socket.
	CoresPerNode int
}

// PaperTopology returns the four-socket, 60-core machine of Section 7.1.
func PaperTopology() Topology { return Topology{Nodes: 4, CoresPerNode: 15} }

// Cores returns the total physical core count.
func (t Topology) Cores() int { return t.Nodes * t.CoresPerNode }

// NodeOfWorker maps worker w of `threads` workers to its NUMA node.
// Threads are distributed evenly across regions (Appendix B) in blocks
// that line up with the chunked data placement: worker w's input chunk
// is the w-th of `threads` equal pieces, and the chunked allocation puts
// that piece on node w*Nodes/threads — so with this pinning every worker
// reads its own chunk locally, which is what the original
// implementations achieve through local (first-touch) allocation.
func (t Topology) NodeOfWorker(w, threads int) int {
	if t.Nodes == 0 || threads <= 0 {
		return 0
	}
	n := (w % threads) * t.Nodes / threads
	if n >= t.Nodes {
		n = t.Nodes - 1
	}
	return n
}

// Policy is a memory placement strategy for a region.
type Policy int

const (
	// Chunked divides a region into Nodes equal consecutive chunks,
	// chunk i on node i — the allocation of the join relations and
	// partition buffers in the radix joins.
	Chunked Policy = iota
	// PageInterleaved round-robins pages over nodes — the NOP global
	// hash table allocation.
	PageInterleaved
	// Local places the whole region on one node.
	Local
)

// PageBytes is the page granularity of interleaved placement. The
// paper's huge-page configuration uses 2 MB pages.
const PageBytes = 2 << 20

// Region is a placed memory range of a given byte size.
type Region struct {
	topo   Topology
	policy Policy
	size   int64
	node   int // for Local
}

// Place describes a memory region of size bytes under the policy.
// For Local, node selects the owner.
func Place(topo Topology, policy Policy, size int64, node int) Region {
	if node < 0 || node >= topo.Nodes {
		node = 0
	}
	return Region{topo: topo, policy: policy, size: size, node: node}
}

// Size returns the region's byte size.
func (r Region) Size() int64 { return r.size }

// NodeAt returns the home node of byte offset off.
func (r Region) NodeAt(off int64) int {
	if off < 0 || off >= r.size {
		panic(fmt.Sprintf("numa: offset %d outside region of %d bytes", off, r.size))
	}
	switch r.policy {
	case Chunked:
		n := int(off * int64(r.topo.Nodes) / r.size)
		if n >= r.topo.Nodes {
			n = r.topo.Nodes - 1
		}
		return n
	case PageInterleaved:
		return int((off / PageBytes) % int64(r.topo.Nodes))
	default:
		return r.node
	}
}

// BytesPerNode returns how many bytes of [lo, hi) live on each node.
func (r Region) BytesPerNode(lo, hi int64) []int64 {
	out := make([]int64, r.topo.Nodes)
	if lo < 0 {
		lo = 0
	}
	if hi > r.size {
		hi = r.size
	}
	for lo < hi {
		n := r.NodeAt(lo)
		// Advance to the next placement boundary.
		var boundary int64
		switch r.policy {
		case Chunked:
			boundary = (int64(n) + 1) * r.size / int64(r.topo.Nodes)
			// Integer division may leave the boundary at lo; ensure
			// progress.
			if boundary <= lo {
				boundary = lo + 1
			}
		case PageInterleaved:
			boundary = (lo/PageBytes + 1) * PageBytes
		default:
			boundary = hi
		}
		if boundary > hi {
			boundary = hi
		}
		out[n] += boundary - lo
		lo = boundary
	}
	return out
}

// Traffic accumulates bytes moved between cpu nodes and memory nodes.
// It is the access profile handed to internal/numasim.
type Traffic struct {
	topo Topology
	// Read[c][m] is bytes read by a core on node c from memory node m;
	// Write likewise for stores.
	Read  [][]int64
	Write [][]int64
}

// NewTraffic creates an empty traffic matrix for the topology.
func NewTraffic(topo Topology) *Traffic {
	t := &Traffic{topo: topo}
	t.Read = make([][]int64, topo.Nodes)
	t.Write = make([][]int64, topo.Nodes)
	for i := 0; i < topo.Nodes; i++ {
		t.Read[i] = make([]int64, topo.Nodes)
		t.Write[i] = make([]int64, topo.Nodes)
	}
	return t
}

// AddRead records bytes read by cpuNode from memNode.
func (t *Traffic) AddRead(cpuNode, memNode int, bytes int64) {
	t.Read[cpuNode][memNode] += bytes
}

// AddWrite records bytes written by cpuNode to memNode.
func (t *Traffic) AddWrite(cpuNode, memNode int, bytes int64) {
	t.Write[cpuNode][memNode] += bytes
}

// AddReadRegion charges a sequential read of region bytes [lo,hi) to
// cpuNode.
func (t *Traffic) AddReadRegion(cpuNode int, r Region, lo, hi int64) {
	for m, b := range r.BytesPerNode(lo, hi) {
		t.Read[cpuNode][m] += b
	}
}

// AddWriteRegion charges a sequential write of region bytes [lo,hi) to
// cpuNode.
func (t *Traffic) AddWriteRegion(cpuNode int, r Region, lo, hi int64) {
	for m, b := range r.BytesPerNode(lo, hi) {
		t.Write[cpuNode][m] += b
	}
}

// Merge adds other into t.
func (t *Traffic) Merge(other *Traffic) {
	for c := 0; c < t.topo.Nodes; c++ {
		for m := 0; m < t.topo.Nodes; m++ {
			t.Read[c][m] += other.Read[c][m]
			t.Write[c][m] += other.Write[c][m]
		}
	}
}

// Local returns the total bytes moved between a core and its own node.
func (t *Traffic) Local() int64 {
	var sum int64
	for n := 0; n < t.topo.Nodes; n++ {
		sum += t.Read[n][n] + t.Write[n][n]
	}
	return sum
}

// Remote returns the total bytes crossing socket boundaries.
func (t *Traffic) Remote() int64 {
	var sum int64
	for c := 0; c < t.topo.Nodes; c++ {
		for m := 0; m < t.topo.Nodes; m++ {
			if c != m {
				sum += t.Read[c][m] + t.Write[c][m]
			}
		}
	}
	return sum
}

// RemoteWriteShare returns the fraction of written bytes that crossed
// sockets — the quantity CPRL eliminates in the partition phase.
func (t *Traffic) RemoteWriteShare() float64 {
	var local, remote int64
	for c := 0; c < t.topo.Nodes; c++ {
		for m := 0; m < t.topo.Nodes; m++ {
			if c == m {
				local += t.Write[c][m]
			} else {
				remote += t.Write[c][m]
			}
		}
	}
	if local+remote == 0 {
		return 0
	}
	return float64(remote) / float64(local+remote)
}
