package numa

import (
	"testing"
	"testing/quick"
)

func TestPaperTopology(t *testing.T) {
	topo := PaperTopology()
	if topo.Cores() != 60 {
		t.Fatalf("cores = %d, want 60", topo.Cores())
	}
}

func TestNodeOfWorkerRoundRobin(t *testing.T) {
	topo := PaperTopology()
	counts := make([]int, topo.Nodes)
	for w := 0; w < 32; w++ {
		counts[topo.NodeOfWorker(w, 32)]++
	}
	for n, c := range counts {
		if c != 8 {
			t.Fatalf("node %d got %d of 32 workers", n, c)
		}
	}
}

func TestChunkedPlacementQuarters(t *testing.T) {
	topo := PaperTopology()
	r := Place(topo, Chunked, 4000, 0)
	if r.NodeAt(0) != 0 || r.NodeAt(999) != 0 {
		t.Fatal("first quarter not on node 0")
	}
	if r.NodeAt(1000) != 1 || r.NodeAt(3999) != 3 {
		t.Fatal("chunk boundaries wrong")
	}
}

func TestChunkedPlacementUnevenSize(t *testing.T) {
	topo := Topology{Nodes: 3, CoresPerNode: 2}
	r := Place(topo, Chunked, 10, 0)
	for off := int64(0); off < 10; off++ {
		n := r.NodeAt(off)
		if n < 0 || n >= 3 {
			t.Fatalf("NodeAt(%d) = %d", off, n)
		}
	}
}

func TestPageInterleavedPlacement(t *testing.T) {
	topo := PaperTopology()
	r := Place(topo, PageInterleaved, 16*PageBytes, 0)
	for p := int64(0); p < 16; p++ {
		want := int(p % 4)
		if got := r.NodeAt(p * PageBytes); got != want {
			t.Fatalf("page %d on node %d, want %d", p, got, want)
		}
	}
}

func TestLocalPlacement(t *testing.T) {
	topo := PaperTopology()
	r := Place(topo, Local, 1000, 2)
	if r.NodeAt(0) != 2 || r.NodeAt(999) != 2 {
		t.Fatal("local region moved")
	}
	// Out-of-range node clamps to 0.
	r = Place(topo, Local, 10, 99)
	if r.NodeAt(5) != 0 {
		t.Fatal("invalid node not clamped")
	}
}

func TestNodeAtPanicsOutsideRegion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range offset")
		}
	}()
	Place(PaperTopology(), Chunked, 10, 0).NodeAt(10)
}

func TestBytesPerNodeCoversRange(t *testing.T) {
	topo := PaperTopology()
	for _, policy := range []Policy{Chunked, PageInterleaved, Local} {
		r := Place(topo, policy, 10*PageBytes, 1)
		b := r.BytesPerNode(12345, 7*PageBytes+17)
		var sum int64
		for _, v := range b {
			sum += v
		}
		want := int64(7*PageBytes+17) - 12345
		if sum != want {
			t.Fatalf("policy %v: bytes sum %d, want %d", policy, sum, want)
		}
	}
}

func TestBytesPerNodeClampsBounds(t *testing.T) {
	r := Place(PaperTopology(), Chunked, 100, 0)
	b := r.BytesPerNode(-5, 200)
	var sum int64
	for _, v := range b {
		sum += v
	}
	if sum != 100 {
		t.Fatalf("clamped sum = %d", sum)
	}
}

// Property: BytesPerNode agrees with per-byte NodeAt attribution.
func TestBytesPerNodeMatchesNodeAtProperty(t *testing.T) {
	topo := Topology{Nodes: 4, CoresPerNode: 1}
	f := func(sizeRaw uint16, loRaw, hiRaw uint16, policyRaw uint8) bool {
		size := int64(sizeRaw%1000) + 1
		lo := int64(loRaw) % size
		hi := lo + int64(hiRaw)%(size-lo+1)
		policy := Policy(policyRaw % 3)
		r := Place(topo, policy, size, 1)
		want := make([]int64, 4)
		for off := lo; off < hi; off++ {
			want[r.NodeAt(off)]++
		}
		got := r.BytesPerNode(lo, hi)
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTrafficAccounting(t *testing.T) {
	topo := PaperTopology()
	tr := NewTraffic(topo)
	tr.AddRead(0, 0, 100)
	tr.AddRead(0, 1, 50)
	tr.AddWrite(2, 2, 30)
	tr.AddWrite(2, 3, 20)
	if tr.Local() != 130 {
		t.Fatalf("local = %d", tr.Local())
	}
	if tr.Remote() != 70 {
		t.Fatalf("remote = %d", tr.Remote())
	}
	if got := tr.RemoteWriteShare(); got != 0.4 {
		t.Fatalf("remote write share = %g", got)
	}
}

func TestTrafficRegionCharging(t *testing.T) {
	topo := PaperTopology()
	tr := NewTraffic(topo)
	r := Place(topo, Chunked, 400, 0)
	tr.AddReadRegion(0, r, 0, 400) // spans all four nodes
	if tr.Read[0][0] != 100 || tr.Read[0][3] != 100 {
		t.Fatalf("read distribution: %v", tr.Read[0])
	}
	tr2 := NewTraffic(topo)
	tr2.AddWriteRegion(1, r, 100, 200) // entirely node 1
	if tr2.Write[1][1] != 100 || tr2.Remote() != 0 {
		t.Fatalf("write distribution: %v", tr2.Write[1])
	}
	tr.Merge(tr2)
	if tr.Write[1][1] != 100 {
		t.Fatal("merge lost writes")
	}
}

func TestRemoteWriteShareEmpty(t *testing.T) {
	tr := NewTraffic(PaperTopology())
	if tr.RemoteWriteShare() != 0 {
		t.Fatal("empty traffic should report 0 share")
	}
}
