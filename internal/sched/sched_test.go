package sched

import (
	"sort"
	"sync"
	"testing"
)

func drain(q Queue) []int {
	var out []int
	for {
		id, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, id)
	}
}

func TestLIFOPopsInReverse(t *testing.T) {
	q := NewLIFO([]int{1, 2, 3})
	got := drain(q)
	want := []int{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop after drain")
	}
}

func TestFIFOPopsInOrder(t *testing.T) {
	q := NewFIFO([]int{4, 5, 6})
	got := drain(q)
	for i, want := range []int{4, 5, 6} {
		if got[i] != want {
			t.Fatalf("got %v", got)
		}
	}
}

func TestQueueConcurrentPopNoDupNoLoss(t *testing.T) {
	const n = 10000
	for _, mk := range []func([]int) Queue{NewLIFO, NewFIFO} {
		q := mk(SequentialOrder(n))
		var mu sync.Mutex
		seen := make([]bool, n)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					id, ok := q.Pop()
					if !ok {
						return
					}
					mu.Lock()
					if seen[id] {
						t.Errorf("task %d popped twice", id)
					}
					seen[id] = true
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		for id, s := range seen {
			if !s {
				t.Fatalf("task %d lost", id)
			}
		}
	}
}

func TestSequentialOrder(t *testing.T) {
	o := SequentialOrder(5)
	for i, v := range o {
		if v != i {
			t.Fatalf("order = %v", o)
		}
	}
}

func TestRoundRobinOrderAlternatesNodes(t *testing.T) {
	// 16 tasks, 4 per node in blocks (like consecutive partitions on
	// chunked memory): round-robin must interleave them.
	nodeOf := func(task int) int { return task / 4 }
	order := RoundRobinOrder(16, 4, nodeOf)
	if len(order) != 16 {
		t.Fatalf("len = %d", len(order))
	}
	// First four pops hit four distinct nodes.
	seen := map[int]bool{}
	for _, task := range order[:4] {
		seen[nodeOf(task)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("first 4 tasks hit %d nodes: %v", len(seen), order[:4])
	}
	// Must be a permutation.
	perm := append([]int(nil), order...)
	sort.Ints(perm)
	for i, v := range perm {
		if v != i {
			t.Fatalf("not a permutation: %v", order)
		}
	}
}

func TestRoundRobinOrderUnbalancedNodes(t *testing.T) {
	// All tasks on node 0 except one: must not lose or duplicate.
	nodeOf := func(task int) int {
		if task == 7 {
			return 3
		}
		return 0
	}
	order := RoundRobinOrder(10, 4, nodeOf)
	perm := append([]int(nil), order...)
	sort.Ints(perm)
	for i, v := range perm {
		if v != i {
			t.Fatalf("not a permutation: %v", order)
		}
	}
}

func TestRoundRobinOrderInvalidNode(t *testing.T) {
	order := RoundRobinOrder(4, 2, func(task int) int { return -1 })
	if len(order) != 4 {
		t.Fatalf("len = %d", len(order))
	}
}

func TestPerNodeQueuesPreferLocal(t *testing.T) {
	nodeOf := func(task int) int { return task % 4 }
	p := NewPerNodeQueues(16, 4, nodeOf)
	if p.Len() != 16 {
		t.Fatalf("len = %d", p.Len())
	}
	id, ok := p.Pop(2)
	if !ok || nodeOf(id) != 2 {
		t.Fatalf("worker on node 2 got task %d (node %d)", id, nodeOf(id))
	}
}

func TestPerNodeQueuesSteal(t *testing.T) {
	// Only node 0 has tasks; a worker on node 3 must steal them.
	p := NewPerNodeQueues(4, 4, func(task int) int { return 0 })
	count := 0
	for {
		_, ok := p.Pop(3)
		if !ok {
			break
		}
		count++
	}
	if count != 4 {
		t.Fatalf("stole %d tasks, want 4", count)
	}
}

func TestRunWorkersRunsAll(t *testing.T) {
	var mu sync.Mutex
	ran := map[int]bool{}
	RunWorkers(7, func(w int) {
		mu.Lock()
		ran[w] = true
		mu.Unlock()
	})
	if len(ran) != 7 {
		t.Fatalf("ran %d workers", len(ran))
	}
}

func TestRunWorkersSingleThreadInline(t *testing.T) {
	ran := false
	RunWorkers(1, func(w int) {
		if w != 0 {
			t.Errorf("worker id %d", w)
		}
		ran = true
	})
	if !ran {
		t.Fatal("single worker not run")
	}
}
