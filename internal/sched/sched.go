// Package sched provides the join-task scheduling strategies compared in
// Section 6.2 of Schuh et al. (SIGMOD 2016): the original LIFO
// co-partition queue that serializes all early tasks onto one NUMA
// region, and the round-robin-by-node insertion order of the improved
// "iS" variants that spreads concurrent tasks over all memory
// controllers. The queues satisfy exec.Queue; the execution machinery
// that drains them (worker pools, cancellation, stats) lives in
// internal/exec.
package sched

import (
	"context"
	"sync/atomic"

	"mmjoin/internal/exec"
)

// Queue hands out task ids to workers. Implementations are safe for
// concurrent Pop.
type Queue interface {
	// Pop returns the next task id, or ok=false when drained.
	Pop() (id int, ok bool)
	// Len returns the initial number of tasks.
	Len() int
}

// lifo pops tasks in reverse insertion order — the stack the paper
// found in the PR* implementations ("a LIFO-task queue (which is
// actually a stack)").
type lifo struct {
	order []int
	next  int64 // counts down from len(order)
}

// NewLIFO builds a stack that pops the given insertion order in reverse.
func NewLIFO(order []int) Queue {
	return &lifo{order: order, next: int64(len(order))}
}

func (q *lifo) Pop() (int, bool) {
	i := atomic.AddInt64(&q.next, -1)
	if i < 0 {
		return 0, false
	}
	return q.order[i], true
}

func (q *lifo) Len() int { return len(q.order) }

// fifo pops tasks in insertion order.
type fifo struct {
	order []int
	next  int64
}

// NewFIFO builds a queue that pops the given order front to back.
func NewFIFO(order []int) Queue {
	return &fifo{order: order}
}

func (q *fifo) Pop() (int, bool) {
	i := atomic.AddInt64(&q.next, 1) - 1
	if i >= int64(len(q.order)) {
		return 0, false
	}
	return q.order[i], true
}

func (q *fifo) Len() int { return len(q.order) }

// SequentialOrder returns 0..n-1: ascending partition indices, the
// insertion order of the original PR* and CPR* implementations. Because
// consecutive partitions are consecutive in virtual memory, the first
// |threads| tasks popped all read from the same NUMA region.
func SequentialOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// RoundRobinOrder reorders task ids so consecutive pops come from
// different NUMA nodes (Section 6.2: "we insert co-partitions into the
// task queue in a round-robin manner"). nodeOf maps a task to the node
// holding its data. Within a node, the original relative order is kept.
func RoundRobinOrder(n int, nodes int, nodeOf func(task int) int) []int {
	perNode := make([][]int, nodes)
	for i := 0; i < n; i++ {
		nd := nodeOf(i)
		if nd < 0 || nd >= nodes {
			nd = 0
		}
		perNode[nd] = append(perNode[nd], i)
	}
	order := make([]int, 0, n)
	for len(order) < n {
		for nd := 0; nd < nodes; nd++ {
			if len(perNode[nd]) > 0 {
				order = append(order, perNode[nd][0])
				perNode[nd] = perNode[nd][1:]
			}
		}
	}
	return order
}

// PerNodeQueues is the alternative mentioned in Section 6.2: one queue
// per NUMA region, workers prefer their own node's queue and steal from
// others once it drains.
type PerNodeQueues struct {
	queues []Queue
}

// NewPerNodeQueues partitions tasks by node into per-node FIFO queues.
func NewPerNodeQueues(n int, nodes int, nodeOf func(task int) int) *PerNodeQueues {
	perNode := make([][]int, nodes)
	for i := 0; i < n; i++ {
		nd := nodeOf(i)
		if nd < 0 || nd >= nodes {
			nd = 0
		}
		perNode[nd] = append(perNode[nd], i)
	}
	qs := make([]Queue, nodes)
	for nd := range qs {
		qs[nd] = NewFIFO(perNode[nd])
	}
	return &PerNodeQueues{queues: qs}
}

// Pop returns the next task for a worker on the given node, stealing
// from subsequent nodes when the local queue is empty.
func (p *PerNodeQueues) Pop(node int) (int, bool) {
	nodes := len(p.queues)
	for i := 0; i < nodes; i++ {
		if id, ok := p.queues[(node+i)%nodes].Pop(); ok {
			return id, true
		}
	}
	return 0, false
}

// Len returns the total task count.
func (p *PerNodeQueues) Len() int {
	n := 0
	for _, q := range p.queues {
		n += q.Len()
	}
	return n
}

// RunWorkers runs fn(worker) on `threads` workers and waits for all of
// them. It is a thin compatibility shim over exec.Pool for callers
// without a context (the TPC-H and column-store executors); code with
// cancellation needs should build an exec.Pool directly.
func RunWorkers(threads int, fn func(worker int)) {
	pool := exec.NewPool(context.Background(), threads)
	_ = pool.Run("workers", func(w *exec.Worker) { fn(w.ID) })
}
