package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"mmjoin/internal/join"
)

// HTTP front end, stdlib-only. Three endpoints:
//
//	POST /query     — run one join (Query JSON in, queryReply JSON out)
//	GET  /metrics   — Metrics snapshot
//	GET  /relations — registered relations
//
// Error mapping keeps the service's typed failures visible to load
// balancers: 503 for shed/closed, 504 for expired deadlines, 404 for
// unknown relations, 400 for malformed requests.

// httpQuery is the wire form of Query: durations in milliseconds so
// curl-written requests stay readable.
type httpQuery struct {
	Build        string `json:"build"`
	Probe        string `json:"probe"`
	Algorithm    string `json:"algorithm"`
	Design       string `json:"design"`
	Kind         string `json:"kind"`
	NullableKeys bool   `json:"nullable_keys"`
	Threads      int    `json:"threads"`
	DeadlineMS   int64  `json:"deadline_ms"`
	NoCache      bool   `json:"no_cache"`
}

// queryReply is the wire form of a successful Response.
type queryReply struct {
	Algorithm string        `json:"algorithm"`
	Matches   int64         `json:"matches"`
	Checksum  uint64        `json:"checksum"`
	CacheHit  bool          `json:"cache_hit"`
	LatencyNS int64         `json:"latency_ns"`
	BuildTime time.Duration `json:"build_or_partition_ns"`
	ProbeTime time.Duration `json:"probe_or_join_ns"`
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /relations", s.handleRelations)
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var hq httpQuery
	if err := json.NewDecoder(r.Body).Decode(&hq); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q := Query{
		Build:        hq.Build,
		Probe:        hq.Probe,
		Algorithm:    hq.Algorithm,
		Design:       hq.Design,
		NullableKeys: hq.NullableKeys,
		Threads:      hq.Threads,
		Deadline:     time.Duration(hq.DeadlineMS) * time.Millisecond,
		NoCache:      hq.NoCache,
	}
	if hq.Kind != "" {
		kind, err := join.ParseKind(hq.Kind)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		q.Kind = kind
	}
	resp, err := s.Join(r.Context(), q)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, queryReply{
		Algorithm: resp.Result.Algorithm,
		Matches:   resp.Result.Matches,
		Checksum:  resp.Result.Checksum,
		CacheHit:  resp.CacheHit,
		LatencyNS: resp.Latency.Nanoseconds(),
		BuildTime: resp.Result.BuildOrPartition,
		ProbeTime: resp.Result.ProbeOrJoin,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Metrics())
}

func (s *Server) handleRelations(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Relations())
}

// statusFor maps service errors onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; 499 is the de-facto convention.
		return 499
	case errors.Is(err, ErrUnknownRelation):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if encErr := json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}); encErr != nil {
		// The connection is gone; nothing useful left to do.
		return
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}
