package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mmjoin/internal/datagen"
	"mmjoin/internal/trace"
	"mmjoin/internal/tuple"
)

// pkRelation builds a dense primary-key relation: every key in
// [0, n) exactly once. Build sides must have unique keys — the paper's
// workloads are PK/FK joins and the kernels' first-match lookups
// depend on it — while probe sides may repeat keys freely.
func pkRelation(n int) tuple.Relation {
	rel := make(tuple.Relation, n)
	for i := range rel {
		rel[i] = tuple.Tuple{Key: tuple.Key(i), Payload: tuple.Payload(2*i + 1)}
	}
	return rel
}

// LoadConfig shapes one closed-loop load test: Clients goroutines each
// issue the next query as soon as the previous answer returns. The mix
// is the service's worst case for fairness — a stream of small cached
// probes with an occasional huge scan riding the same gate — plus an
// optional overload mode that drives cold, uncacheable builds past the
// admission budget to exercise shedding.
type LoadConfig struct {
	// Duration is the measured closed-loop window (0 = 5s).
	Duration time.Duration
	// Clients is the closed-loop client count (0 = 8).
	Clients int
	// BuildSize is the hot build relation's cardinality (0 = 1<<18).
	BuildSize int
	// ProbeSize is the small probes' cardinality (0 = 1024).
	ProbeSize int
	// ScanEvery makes every Nth query per client a big scan over
	// ScanProbeSize tuples (0 = 64; <0 disables scans).
	ScanEvery int
	// ScanProbeSize is the big scan's probe cardinality (0 = 1<<20).
	ScanProbeSize int
	// Design is the cached table design wire name ("" = server default).
	Design string
	// Overload switches every client to cold uncacheable joins (NoCache)
	// so their combined footprint overruns the admission budget; the
	// expected outcome is shed queries, not queue growth or OOM.
	Overload bool
	// Seed makes the generated relations deterministic (0 = 1).
	Seed uint64
}

func (lc LoadConfig) withDefaults() LoadConfig {
	if lc.Duration <= 0 {
		lc.Duration = 5 * time.Second
	}
	if lc.Clients <= 0 {
		lc.Clients = 8
	}
	if lc.BuildSize <= 0 {
		lc.BuildSize = 1 << 18
	}
	if lc.ProbeSize <= 0 {
		lc.ProbeSize = 1024
	}
	if lc.ScanEvery == 0 {
		lc.ScanEvery = 64
	}
	if lc.ScanProbeSize <= 0 {
		lc.ScanProbeSize = 1 << 20
	}
	if lc.Seed == 0 {
		lc.Seed = 1
	}
	return lc
}

// LoadReport is one load test's outcome, quantiles from the service's
// trace histograms plus the cold/warm cache comparison.
type LoadReport struct {
	Config   LoadConfig    `json:"config"`
	Duration time.Duration `json:"duration"`
	// Queries counts completed queries in the measured window; QPS is
	// Queries over the window.
	Queries int64   `json:"queries"`
	QPS     float64 `json:"qps"`
	// Latency quantiles over the window's successful queries.
	P50  time.Duration `json:"p50"`
	P99  time.Duration `json:"p99"`
	Mean time.Duration `json:"mean"`
	// Cache and shedding outcomes over the window.
	Hits    int64   `json:"cache_hits"`
	Misses  int64   `json:"cache_misses"`
	HitRate float64 `json:"hit_rate"`
	Shed    int64   `json:"shed"`
	Errors  int64   `json:"errors"`
	// ColdLatency is a small probe with a flushed cache (pays the
	// build), WarmLatency the same probe again (cache hit); Speedup is
	// their ratio — the cached-vs-cold headline number.
	ColdLatency time.Duration `json:"cold_latency"`
	WarmLatency time.Duration `json:"warm_latency"`
	Speedup     float64       `json:"speedup"`
	// Server is the service-side metrics snapshot at the end.
	Server Metrics `json:"server"`
}

// String renders the report for terminals.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"loadtest: %d queries in %v (%.0f qps)\n"+
			"  latency: p50=%v p99=%v mean=%v\n"+
			"  cache:   hits=%d misses=%d hit-rate=%.1f%%\n"+
			"  shed=%d errors=%d\n"+
			"  cold=%v warm=%v speedup=%.1fx",
		r.Queries, r.Duration.Round(time.Millisecond), r.QPS,
		r.P50, r.P99, r.Mean,
		r.Hits, r.Misses, 100*r.HitRate,
		r.Shed, r.Errors,
		r.ColdLatency, r.WarmLatency, r.Speedup)
}

// loadClient is one client's private tally, merged after the run (the
// histograms are single-writer, so no locking inside the loop).
type loadClient struct {
	hist   trace.Histogram
	hits   int64
	misses int64
	shed   int64
	errs   int64
}

// RunLoad registers the workload's relations on s and drives the
// closed loop until the window ends or ctx is cancelled. The server
// keeps running afterwards; the caller owns Close (and any post-close
// leak assertions).
func RunLoad(ctx context.Context, s *Server, lc LoadConfig) (*LoadReport, error) {
	lc = lc.withDefaults()

	// The hot build side plus per-client small probes (distinct
	// relations, identical shape) and one big scan probe.
	build := pkRelation(lc.BuildSize)
	if err := s.RegisterRelation("hot_build", build); err != nil {
		return nil, err
	}
	for i := 0; i < lc.Clients; i++ {
		probe := datagen.UniformRelation(lc.ProbeSize, lc.BuildSize, lc.Seed+uint64(i)+1)
		if err := s.RegisterRelation(fmt.Sprintf("probe_%d", i), probe); err != nil {
			return nil, err
		}
	}
	if err := s.RegisterRelation("scan_probe",
		datagen.UniformRelation(lc.ScanProbeSize, lc.BuildSize, lc.Seed+1<<32)); err != nil {
		return nil, err
	}

	report := &LoadReport{Config: lc}

	// Cold/warm comparison on a quiet server: the first probe pays the
	// build, the second hits the cache.
	if !lc.Overload {
		s.FlushCache()
		cold, err := s.Join(ctx, Query{Build: "hot_build", Probe: "probe_0", Design: lc.Design})
		if err != nil {
			return nil, fmt.Errorf("loadgen: cold query: %w", err)
		}
		warm, err := s.Join(ctx, Query{Build: "hot_build", Probe: "probe_0", Design: lc.Design})
		if err != nil {
			return nil, fmt.Errorf("loadgen: warm query: %w", err)
		}
		if !warm.CacheHit || cold.CacheHit {
			return nil, fmt.Errorf("loadgen: cold/warm cache outcomes wrong (cold hit=%v, warm hit=%v)",
				cold.CacheHit, warm.CacheHit)
		}
		report.ColdLatency = cold.Latency
		report.WarmLatency = warm.Latency
		if warm.Latency > 0 {
			report.Speedup = float64(cold.Latency) / float64(warm.Latency)
		}
	}

	// Closed loop: each client issues its next query on return of the
	// previous one, so offered load adapts to service capacity (no
	// coordinated-omission artifacts from an open-loop schedule).
	runCtx, cancel := context.WithTimeout(ctx, lc.Duration)
	defer cancel()
	clients := make([]loadClient, lc.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < lc.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := &clients[id]
			smallProbe := fmt.Sprintf("probe_%d", id)
			for n := 0; ; n++ {
				if runCtx.Err() != nil {
					return
				}
				q := Query{Build: "hot_build", Probe: smallProbe, Design: lc.Design}
				if lc.Overload {
					q.NoCache = true
				} else if lc.ScanEvery > 0 && n%lc.ScanEvery == lc.ScanEvery-1 {
					q.Probe = "scan_probe"
				}
				t0 := time.Now()
				resp, err := s.Join(runCtx, q)
				switch {
				case errors.Is(err, ErrOverloaded):
					c.shed++
					// Back off briefly: an immediate retry against a full
					// budget would just measure the shed fast path.
					time.Sleep(time.Millisecond)
				case err != nil:
					if runCtx.Err() != nil {
						return // window closed mid-query
					}
					c.errs++
				default:
					c.hist.Observe(time.Since(t0))
					if resp.CacheHit {
						c.hits++
					} else {
						c.misses++
					}
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var merged trace.Histogram
	for i := range clients {
		c := &clients[i]
		merged.Merge(&c.hist)
		report.Hits += c.hits
		report.Misses += c.misses
		report.Shed += c.shed
		report.Errors += c.errs
	}
	report.Duration = elapsed
	report.Queries = merged.Count()
	if elapsed > 0 {
		report.QPS = float64(report.Queries) / elapsed.Seconds()
	}
	report.P50 = merged.Quantile(0.50)
	report.P99 = merged.Quantile(0.99)
	report.Mean = merged.Mean()
	if total := report.Hits + report.Misses; total > 0 {
		report.HitRate = float64(report.Hits) / float64(total)
	}
	report.Server = s.Metrics()
	return report, nil
}
