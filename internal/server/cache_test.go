package server

import (
	"context"
	"errors"
	"testing"

	"mmjoin/internal/datagen"
	"mmjoin/internal/exec"
	"mmjoin/internal/join"
	"mmjoin/internal/offheap"
)

// TestEvictionWhilePinnedNeitherFreesNorLeaks is the cache-lifetime
// regression test: evicting a pinned entry must not free the (possibly
// off-heap) table under the running probe, and once the probe unpins,
// the storage must actually be freed — asserted through the arena
// buffer balance and the process-wide off-heap region balance.
func TestEvictionWhilePinnedNeitherFreesNorLeaks(t *testing.T) {
	baseRegions := offheap.Outstanding()
	arena := exec.NewArenaOffHeap()
	build := pkRelation(8192)
	probe := datagen.UniformRelation(4096, 8192, 4)
	ref, err := (join.Reference{}).Run(build, probe, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := &join.Options{Threads: 2, Arena: arena}

	c := newBuildCache(1) // capacity below any real table: every publish evicts
	key := cacheKey{fp: build.Fingerprint(), design: join.DesignChained}

	// Build and publish the entry, keeping our pin (the "probe in
	// flight").
	e, leader := c.pin(key)
	if !leader {
		t.Fatal("first pin was not the leader")
	}
	bt, err := join.BuildTable(context.Background(), build, join.DesignChained, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.publish(e, bt) // over capacity: evicts itself immediately, while pinned

	if entries, bytes := c.stats(); entries != 0 || bytes != 0 {
		t.Fatalf("pinned entry still indexed after eviction: %d entries, %d bytes", entries, bytes)
	}
	if bt.Released() {
		t.Fatal("eviction released the table under a live pin")
	}
	// The pinned table must still answer probes correctly.
	res, err := join.ProbeTable(context.Background(), bt, probe, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != ref.Matches || res.Checksum != ref.Checksum {
		t.Fatalf("probe against evicted-but-pinned table: %d/%d, want %d/%d",
			res.Matches, res.Checksum, ref.Matches, ref.Checksum)
	}

	// Dropping the last pin frees the storage: arena balance returns to
	// zero and, after Destroy, the off-heap region count to baseline.
	c.unpin(e)
	if !bt.Released() {
		t.Fatal("last unpin did not release the dead entry's table")
	}
	if out := arena.Outstanding(); out != 0 {
		t.Fatalf("arena outstanding after last unpin = %d", out)
	}
	arena.Destroy()
	if got := offheap.Outstanding(); got != baseRegions {
		t.Fatalf("off-heap regions leaked: %d outstanding, baseline %d", got, baseRegions)
	}
}

// TestFailedBuildIsRetriedNotCached pins the fail path: a leader that
// errors removes the entry, so the next pin is a fresh leader.
func TestFailedBuildIsRetriedNotCached(t *testing.T) {
	c := newBuildCache(1 << 20)
	key := cacheKey{fp: 42, design: join.DesignLinear}
	e, leader := c.pin(key)
	if !leader {
		t.Fatal("not leader")
	}
	sentinel := errors.New("boom")
	c.fail(e, sentinel)
	select {
	case <-e.ready:
	default:
		t.Fatal("fail did not close ready")
	}
	if !errors.Is(e.err, sentinel) {
		t.Fatalf("entry err = %v", e.err)
	}
	c.unpin(e)
	if e2, leader := c.pin(key); !leader {
		t.Fatal("retry after failure did not get a fresh leader")
	} else {
		c.fail(e2, sentinel)
		c.unpin(e2)
	}
}

// TestFollowerSharesOneBuild checks the singleflight shape: a follower
// pinning a building entry waits for the leader's publish and then
// reads the same table.
func TestFollowerSharesOneBuild(t *testing.T) {
	c := newBuildCache(1 << 30)
	build := pkRelation(1024)
	key := cacheKey{fp: build.Fingerprint(), design: join.DesignLinear}
	e, leader := c.pin(key)
	if !leader {
		t.Fatal("not leader")
	}
	follower, followerLeads := c.pin(key)
	if followerLeads || follower != e {
		t.Fatal("follower did not share the building entry")
	}
	bt, err := join.BuildTable(context.Background(), build, join.DesignLinear, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.publish(e, bt)
	<-follower.ready
	if follower.bt != bt {
		t.Fatal("follower read a different table")
	}
	c.unpin(e)
	c.unpin(follower)
	if entries, _ := c.stats(); entries != 1 {
		t.Fatalf("entries = %d, want the table cached", entries)
	}
	if c.flush() != 1 {
		t.Fatal("flush did not drop the entry")
	}
	if !bt.Released() {
		t.Fatal("flush did not release the unpinned table")
	}
}

// TestLRUEvictsColdestFirst fills the cache past capacity and checks
// the least-recently-pinned entry goes first.
func TestLRUEvictsColdestFirst(t *testing.T) {
	relA := datagen.UniformRelation(2048, 1<<30, 11)
	relB := datagen.UniformRelation(2048, 1<<30, 12)
	relC := datagen.UniformRelation(2048, 1<<30, 13)
	btA, err := join.BuildTable(context.Background(), relA, join.DesignLinear, nil)
	if err != nil {
		t.Fatal(err)
	}
	btB, err := join.BuildTable(context.Background(), relB, join.DesignLinear, nil)
	if err != nil {
		t.Fatal(err)
	}
	btC, err := join.BuildTable(context.Background(), relC, join.DesignLinear, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := newBuildCache(btA.SizeBytes() + btB.SizeBytes()) // room for two
	for i, pair := range []struct {
		fp uint64
		bt *join.BuiltTable
	}{{relA.Fingerprint(), btA}, {relB.Fingerprint(), btB}, {relC.Fingerprint(), btC}} {
		e, leader := c.pin(cacheKey{fp: pair.fp, design: join.DesignLinear})
		if !leader {
			t.Fatalf("entry %d: not leader", i)
		}
		c.publish(e, pair.bt)
		c.unpin(e)
	}
	// A was pinned least recently: it must be the evicted one.
	if !btA.Released() {
		t.Fatal("oldest entry not evicted")
	}
	if btB.Released() || btC.Released() {
		t.Fatal("newer entries evicted out of order")
	}
	if c.flush() != 2 {
		t.Fatal("flush count wrong")
	}
}
