package server

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// admission is the memory admission controller: a byte-budget semaphore
// with a bounded FIFO wait queue. Queries reserve their modeled build
// footprint (footprintBytes) before running and release it when the
// build-phase memory dies. Two shed conditions replace unbounded
// queueing: a full queue sheds immediately, and a waiter that outlives
// maxWait sheds on its way out — both with ErrOverloaded, which callers
// can distinguish from real failures.
//
// FIFO granting (a new query never jumps waiters, even when its bytes
// would fit) trades a little utilization for starvation-freedom: a big
// query at the head cannot be passed forever by a stream of small ones.
type admission struct {
	budget  int64
	maxQ    int
	maxWait time.Duration

	mu      sync.Mutex
	used    int64
	waiters list.List // of *admitWaiter, FIFO
}

type admitWaiter struct {
	bytes   int64
	ready   chan struct{}
	granted bool // guarded by admission.mu; set before ready closes
}

func newAdmission(budget int64, maxQueued int, maxWait time.Duration) *admission {
	return &admission{budget: budget, maxQ: maxQueued, maxWait: maxWait}
}

// admit reserves bytes of the budget, blocking FIFO behind earlier
// waiters. It returns the matching release (idempotency is the
// caller's job: call it exactly once) or ErrOverloaded / ctx.Err().
// Requests larger than the whole budget are clamped to it — an
// oversized query runs alone rather than never.
func (a *admission) admit(ctx context.Context, bytes int64) (release func(), err error) {
	if bytes <= 0 {
		return func() {}, nil
	}
	if bytes > a.budget {
		bytes = a.budget
	}
	a.mu.Lock()
	if a.waiters.Len() == 0 && a.used+bytes <= a.budget {
		a.used += bytes
		a.mu.Unlock()
		return func() { a.release(bytes) }, nil
	}
	if a.waiters.Len() >= a.maxQ {
		a.mu.Unlock()
		return nil, ErrOverloaded
	}
	w := &admitWaiter{bytes: bytes, ready: make(chan struct{})}
	elem := a.waiters.PushBack(w)
	a.mu.Unlock()

	var timeout <-chan time.Time
	if a.maxWait > 0 {
		t := time.NewTimer(a.maxWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ready:
		return func() { a.release(bytes) }, nil
	case <-ctx.Done():
		a.abandon(elem, w)
		return nil, ctx.Err()
	case <-timeout:
		a.abandon(elem, w)
		return nil, ErrOverloaded
	}
}

// abandon removes a waiter that gave up. The grant may have raced the
// give-up (release closed w.ready concurrently); then the reservation
// is already counted and must be handed back.
func (a *admission) abandon(elem *list.Element, w *admitWaiter) {
	a.mu.Lock()
	granted := w.granted
	if !granted {
		a.waiters.Remove(elem)
	}
	a.mu.Unlock()
	if granted {
		a.release(w.bytes)
	}
}

// release returns a reservation and grants as many head-of-queue
// waiters as now fit.
func (a *admission) release(bytes int64) {
	a.mu.Lock()
	a.used -= bytes
	for {
		front := a.waiters.Front()
		if front == nil {
			break
		}
		w := front.Value.(*admitWaiter)
		if a.used+w.bytes > a.budget {
			break
		}
		a.waiters.Remove(front)
		a.used += w.bytes
		w.granted = true
		close(w.ready)
	}
	a.mu.Unlock()
}

// usedBytes and queued expose the controller's state for metrics.
func (a *admission) usedBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

func (a *admission) queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiters.Len()
}
