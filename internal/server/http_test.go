package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"mmjoin/internal/datagen"
	"mmjoin/internal/join"
)

func httpTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := Open(Config{Threads: 2})
	build := pkRelation(2048)
	probe := datagen.UniformRelation(4096, 2048, 10)
	if err := srv.RegisterRelation("b", build); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterRelation("p", probe); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return srv, ts
}

func postQuery(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, out
}

func TestHTTPQueryRoundTrip(t *testing.T) {
	srv, ts := httpTestServer(t)
	srv.mu.RLock()
	build, probe := srv.rels["b"].rel, srv.rels["p"].rel
	srv.mu.RUnlock()
	ref, err := (join.Reference{}).Run(build, probe, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cold then warm: second answer must be a cache hit, same result.
	for i, wantHit := range []bool{false, true} {
		resp, out := postQuery(t, ts, `{"build":"b","probe":"p"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %v", resp.StatusCode, out)
		}
		if int64(out["matches"].(float64)) != ref.Matches {
			t.Fatalf("query %d: matches = %v, want %d", i, out["matches"], ref.Matches)
		}
		if out["cache_hit"].(bool) != wantHit {
			t.Fatalf("query %d: cache_hit = %v, want %v", i, out["cache_hit"], wantHit)
		}
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, ts := httpTestServer(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"unknown relation", `{"build":"nope","probe":"p"}`, http.StatusNotFound},
		{"bad json", `{`, http.StatusBadRequest},
		{"bad design", `{"build":"b","probe":"p","design":"btree"}`, http.StatusInternalServerError},
		{"bad kind", `{"build":"b","probe":"p","kind":"sideways"}`, http.StatusBadRequest},
		{"bad algorithm", `{"build":"b","probe":"p","algorithm":"QUANTUM"}`, http.StatusInternalServerError},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, out := postQuery(t, ts, c.body)
			if resp.StatusCode != c.want {
				t.Fatalf("status = %d, want %d (%v)", resp.StatusCode, c.want, out)
			}
			if _, ok := out["error"]; !ok {
				t.Fatalf("error body missing: %v", out)
			}
		})
	}
}

func TestHTTPMetricsAndRelations(t *testing.T) {
	_, ts := httpTestServer(t)
	if _, out := postQuery(t, ts, `{"build":"b","probe":"p"}`); out["error"] != nil {
		t.Fatalf("seed query failed: %v", out)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Queries < 1 || m.Misses < 1 {
		t.Fatalf("metrics = %+v", m)
	}

	resp, err = http.Get(ts.URL + "/relations")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rels []RelationInfo
	if err := json.NewDecoder(resp.Body).Decode(&rels); err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("relations = %+v", rels)
	}
	for _, r := range rels {
		if r.Fingerprint == 0 || r.Tuples == 0 {
			t.Fatalf("relation %+v missing metadata", r)
		}
	}
}

func TestHTTPDeadline(t *testing.T) {
	srv, ts := httpTestServer(t)
	// Re-register a large build so a 1 ms deadline expires mid-run.
	if err := srv.RegisterRelation("big", pkRelation(1<<20)); err != nil {
		t.Fatal(err)
	}
	resp, out := postQuery(t, ts, `{"build":"big","probe":"p","deadline_ms":1,"no_cache":true}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%v), want 504", resp.StatusCode, out)
	}
}
