package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionFastPathAndRelease(t *testing.T) {
	a := newAdmission(100, 4, time.Second)
	r1, err := a.admit(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.admit(context.Background(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.usedBytes(); got != 100 {
		t.Fatalf("used = %d", got)
	}
	r1()
	r2()
	if got := a.usedBytes(); got != 0 {
		t.Fatalf("used after release = %d", got)
	}
}

func TestAdmissionZeroBytesAlwaysPasses(t *testing.T) {
	a := newAdmission(10, 1, time.Millisecond)
	hold, err := a.admit(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	release, err := a.admit(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	release()
}

func TestAdmissionOversizedClampsToBudget(t *testing.T) {
	a := newAdmission(100, 4, time.Second)
	release, err := a.admit(context.Background(), 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.usedBytes(); got != 100 {
		t.Fatalf("oversized request reserved %d, want the whole budget", got)
	}
	release()
	if got := a.usedBytes(); got != 0 {
		t.Fatalf("used after release = %d", got)
	}
}

func TestAdmissionShedsOnFullQueue(t *testing.T) {
	a := newAdmission(10, 1, time.Hour)
	hold, err := a.admit(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	// One waiter fits the queue...
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		_, err := a.admit(ctx, 5)
		done <- err
	}()
	waitForQueued(t, a, 1)
	// ...the second sheds immediately.
	if _, err := a.admit(context.Background(), 5); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	hold()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
}

func TestAdmissionShedsAfterMaxWait(t *testing.T) {
	a := newAdmission(10, 8, 15*time.Millisecond)
	hold, err := a.admit(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	start := time.Now()
	if _, err := a.admit(context.Background(), 5); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("shed took %v", waited)
	}
	if got := a.queued(); got != 0 {
		t.Fatalf("abandoned waiter still queued: %d", got)
	}
}

func TestAdmissionHonorsContext(t *testing.T) {
	a := newAdmission(10, 8, time.Hour)
	hold, err := a.admit(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer hold()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := a.admit(ctx, 5)
		done <- err
	}()
	waitForQueued(t, a, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// TestAdmissionFIFOGranting checks release wakes waiters in arrival
// order and never over-grants the budget.
func TestAdmissionFIFOGranting(t *testing.T) {
	a := newAdmission(100, 16, time.Hour)
	hold, err := a.admit(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Full-budget requests serialize grants, so arrival order is
			// observable as grant order.
			release, err := a.admit(context.Background(), 100)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			release()
		}(i)
		waitForQueued(t, a, i+1) // enforce arrival order
	}
	hold()
	wg.Wait()
	if a.usedBytes() != 0 {
		t.Fatalf("used after drain = %d", a.usedBytes())
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("grant order %v is not FIFO", order)
		}
	}
}

func waitForQueued(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for a.queued() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, a.queued())
		}
		time.Sleep(100 * time.Microsecond)
	}
}
