package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"mmjoin/internal/trace"
)

// metrics aggregates service-level telemetry. Latency distributions
// reuse the repository's log2 trace.Histogram (the structure behind the
// per-phase quantiles of exec.Stats), guarded by a mutex because the
// histogram itself is single-writer.
type metrics struct {
	mu        sync.Mutex
	queries   int64
	hits      int64
	misses    int64
	shed      int64
	deadlines int64
	failures  int64
	all       trace.Histogram
	hitLat    trace.Histogram
	missLat   trace.Histogram
}

// observe records one finished query. cacheable marks queries eligible
// for the cached path (only they count hits/misses); hit marks a cache
// hit among them.
func (m *metrics) observe(d time.Duration, cacheable, hit bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	switch {
	case errors.Is(err, ErrOverloaded):
		m.shed++
		return
	case errors.Is(err, context.DeadlineExceeded):
		m.deadlines++
		return
	case err != nil:
		m.failures++
		return
	}
	m.all.Observe(d)
	if cacheable {
		if hit {
			m.hits++
			m.hitLat.Observe(d)
		} else {
			m.misses++
			m.missLat.Observe(d)
		}
	}
}

// Metrics is a consistent snapshot of the service counters.
type Metrics struct {
	// Queries counts every Join call that reached execution or
	// shedding (unknown relations and closed-server errors excluded).
	Queries int64 `json:"queries"`
	// Hits and Misses partition the cacheable queries that completed.
	Hits   int64 `json:"cache_hits"`
	Misses int64 `json:"cache_misses"`
	// Shed counts queries rejected with ErrOverloaded.
	Shed int64 `json:"shed"`
	// Deadlines counts queries that expired mid-run.
	Deadlines int64 `json:"deadlines"`
	// Failures counts other errors.
	Failures int64 `json:"failures"`
	// Latency quantiles over successful queries (service time,
	// admission wait included), split by cache outcome.
	P50     time.Duration `json:"p50"`
	P99     time.Duration `json:"p99"`
	Mean    time.Duration `json:"mean"`
	HitP50  time.Duration `json:"hit_p50"`
	HitP99  time.Duration `json:"hit_p99"`
	MissP50 time.Duration `json:"miss_p50"`
	MissP99 time.Duration `json:"miss_p99"`
	// Cache occupancy and admission pressure at snapshot time.
	CacheEntries  int   `json:"cache_entries"`
	CacheBytes    int64 `json:"cache_bytes"`
	AdmittedBytes int64 `json:"admitted_bytes"`
	QueuedQueries int   `json:"queued_queries"`
}

// HitRate returns hits / (hits + misses), 0 when no cacheable queries ran.
func (mt Metrics) HitRate() float64 {
	total := mt.Hits + mt.Misses
	if total == 0 {
		return 0
	}
	return float64(mt.Hits) / float64(total)
}

// Metrics snapshots the server's counters, latency quantiles, cache
// occupancy and admission pressure.
func (s *Server) Metrics() Metrics {
	s.met.mu.Lock()
	mt := Metrics{
		Queries:   s.met.queries,
		Hits:      s.met.hits,
		Misses:    s.met.misses,
		Shed:      s.met.shed,
		Deadlines: s.met.deadlines,
		Failures:  s.met.failures,
		P50:       s.met.all.Quantile(0.50),
		P99:       s.met.all.Quantile(0.99),
		Mean:      s.met.all.Mean(),
		HitP50:    s.met.hitLat.Quantile(0.50),
		HitP99:    s.met.hitLat.Quantile(0.99),
		MissP50:   s.met.missLat.Quantile(0.50),
		MissP99:   s.met.missLat.Quantile(0.99),
	}
	s.met.mu.Unlock()
	mt.CacheEntries, mt.CacheBytes = s.cache.stats()
	mt.AdmittedBytes = s.adm.usedBytes()
	mt.QueuedQueries = s.adm.queued()
	return mt
}
