package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mmjoin/internal/datagen"
	"mmjoin/internal/exec"
	"mmjoin/internal/join"
	"mmjoin/internal/offheap"
)

// TestConcurrentQueriesStress is the shared-state race net for the
// whole service: many goroutines issue overlapping queries that mix
// cache hits, cold builds across designs, fused algorithms, traced
// runs, deadlines and cache flushes, all against one server with a
// deliberately small cache (forcing eviction under load). Run under
// -race in CI; every successful answer must equal the reference.
func TestConcurrentQueriesStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short")
	}
	baseRegions := offheap.Outstanding()
	srv := Open(Config{
		Threads:     2,
		WorkerSlots: 4,
		CacheBytes:  1 << 20, // a handful of tables: constant eviction churn
		OffHeap:     true,
	})
	build := pkRelation(8192)
	probe := datagen.UniformRelation(8192, 8192, 22)
	if err := srv.RegisterRelation("b", build); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterRelation("p", probe); err != nil {
		t.Fatal(err)
	}
	ref, err := (join.Reference{}).Run(build, probe, nil)
	if err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 8
		iterations = 30
	)
	designs := join.TableDesigns()
	var successes, flushes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				q := Query{Build: "b", Probe: "p"}
				switch (g + i) % 6 {
				case 0:
					q.Design = designs[i%len(designs)].String()
				case 1:
					q.Algorithm = "NOP"
				case 2:
					q.Trace = true
				case 3:
					q.Deadline = time.Duration(1+i%3) * time.Millisecond
				case 4:
					q.NoCache = true
				case 5:
					srv.FlushCache()
					flushes.Add(1)
				}
				resp, err := srv.Join(context.Background(), q)
				switch {
				case err == nil:
					if resp.Result.Matches != ref.Matches || resp.Result.Checksum != ref.Checksum {
						t.Errorf("g%d i%d: matches=%d checksum=%d, want %d/%d",
							g, i, resp.Result.Matches, resp.Result.Checksum, ref.Matches, ref.Checksum)
						return
					}
					successes.Add(1)
				case errors.Is(err, context.DeadlineExceeded),
					errors.Is(err, ErrOverloaded):
					// Expected under the tiny deadlines and churn.
				default:
					t.Errorf("g%d i%d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if successes.Load() == 0 {
		t.Fatal("stress produced zero successful queries")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := offheap.Outstanding(); got != baseRegions {
		t.Fatalf("off-heap regions leaked under stress: %d outstanding, baseline %d", got, baseRegions)
	}
}

// TestSharedArenaConcurrentJoins drives the fused algorithms of several
// independent executions over one shared arena concurrently — the exact
// shape that exposes freelist races in exec.Arena (the single-query
// assumption this PR's audit covered). Deterministic answers prove no
// buffer was handed to two executions at once.
func TestSharedArenaConcurrentJoins(t *testing.T) {
	arena := exec.NewArenaOffHeap()
	defer arena.Destroy()
	build := pkRelation(4096)
	probe := datagen.UniformRelation(8192, 4096, 32)
	ref, err := (join.Reference{}).Run(build, probe, nil)
	if err != nil {
		t.Fatal(err)
	}
	algos := []string{"NOP", "NOPA", "CHTJ", "PRO", "CPRL"}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			alg := join.MustNew(algos[i%len(algos)])
			res, err := alg.RunContext(context.Background(), build, probe,
				&join.Options{Threads: 2, Arena: arena, Domain: 4096})
			if err != nil {
				errs[i] = err
				return
			}
			if res.Matches != ref.Matches || res.Checksum != ref.Checksum {
				errs[i] = fmt.Errorf("%s: matches=%d checksum=%d, want %d/%d",
					alg.Name(), res.Matches, res.Checksum, ref.Matches, ref.Checksum)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if out := arena.Outstanding(); out != 0 {
		t.Fatalf("shared arena outstanding after concurrent joins = %d", out)
	}
}
