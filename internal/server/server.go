// Package server is a long-running multi-tenant join service over the
// Table 2 algorithms: many concurrent queries join registered relations
// under per-query deadlines, an admission controller that bounds the
// aggregate modeled memory footprint (shedding load with ErrOverloaded
// instead of queueing without bound), a CPU gate that makes concurrent
// executions share worker slots fairly (exec.Gate), and a shared
// build-side cache keyed by relation fingerprint so the build phase of
// a hot relation is paid once and later queries run probe-only.
//
// The package exists because the rest of the repository is built around
// single-query assumptions — one pool, one tracer, one arena, one table
// per execution — and a service breaks every one of them. The invariants
// it layers on top:
//
//   - Memory: admission reserves 16 B per build tuple (the
//     join.Options.MemoryBudget model of DESIGN.md §13) for the duration
//     of a query's build; ready cached tables are owned by the cache and
//     bounded separately by Config.CacheBytes, so resident table bytes
//     never exceed MemoryBudget + CacheBytes.
//   - CPU: every query's pool shares one exec.Gate of
//     Config.WorkerSlots slots, yielding at morsel boundaries, so a
//     huge scan cannot starve small probes for more than one morsel.
//   - Tables: cache entries are refcounted; probes pin them, eviction
//     removes an entry from the index immediately but its (possibly
//     off-heap) storage is released through join.BuiltTable.Release
//     only when the refcount reaches zero — never under a live probe.
//   - Tracing: each query that asks for spans gets its own
//     trace.Tracer bracketed by Acquire, so overlapping queries cannot
//     interleave timelines (trace enforces the bracket by panicking).
package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mmjoin/internal/exec"
	"mmjoin/internal/join"
	"mmjoin/internal/trace"
	"mmjoin/internal/tuple"
)

// Sentinel errors a caller can program against.
var (
	// ErrOverloaded is returned instead of queueing a query without
	// bound: the admission queue is full or the admission wait budget
	// expired. The caller should back off and retry.
	ErrOverloaded = errors.New("server: overloaded")
	// ErrClosed is returned for queries after Close.
	ErrClosed = errors.New("server: closed")
	// ErrUnknownRelation wraps the name of an unregistered relation.
	ErrUnknownRelation = errors.New("server: unknown relation")
)

// footprintBytes is the modeled in-flight memory of building a join
// over buildLen tuples: the 16 B/build-tuple accounting rule shared
// with join.Options.MemoryBudget (DESIGN.md §13).
func footprintBytes(buildLen int) int64 { return 16 * int64(buildLen) }

// Config sizes one Server. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// Threads is the default per-query worker count (0 = GOMAXPROCS).
	Threads int
	// WorkerSlots is the gate's CPU slot count shared by all concurrent
	// queries (0 = GOMAXPROCS). Aggregate running workers never exceed
	// it; excess workers park on the gate and get slots yielded to them
	// at morsel boundaries.
	WorkerSlots int
	// MemoryBudget bounds the aggregate modeled footprint of admitted
	// queries, in bytes (0 = 256 MiB). A single query larger than the
	// budget is clamped to the whole budget (it runs alone).
	MemoryBudget int64
	// MaxQueued bounds how many queries may wait for admission; beyond
	// it queries shed immediately with ErrOverloaded (0 = 64).
	MaxQueued int
	// AdmitWait bounds how long a query waits for admission before
	// shedding with ErrOverloaded (0 = 100ms; <0 = wait for ctx only).
	AdmitWait time.Duration
	// CacheBytes bounds the build cache's resident table storage, in
	// bytes of actual table footprint (0 = 256 MiB). LRU-by-bytes.
	CacheBytes int64
	// DefaultDeadline is applied to queries that carry none (0 = none).
	DefaultDeadline time.Duration
	// OffHeap places table storage in GC-free off-heap regions (the
	// server always uses a private arena so Close can assert balance).
	OffHeap bool
	// Design is the default cached table design (zero = DesignChained).
	Design join.TableDesign
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.WorkerSlots <= 0 {
		c.WorkerSlots = runtime.GOMAXPROCS(0)
	}
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 256 << 20
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.AdmitWait == 0 {
		c.AdmitWait = 100 * time.Millisecond
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	return c
}

// registeredRelation is one named relation plus its content fingerprint
// (computed once at registration — the cache key half that makes two
// registrations of identical content share cached tables).
type registeredRelation struct {
	rel tuple.Relation
	fp  uint64
}

// Server is the join service. All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	gate  *exec.Gate
	arena *exec.Arena
	adm   *admission
	cache *buildCache
	met   *metrics

	mu     sync.RWMutex
	rels   map[string]registeredRelation
	closed bool
	wg     sync.WaitGroup // in-flight queries
}

// Open starts a server. Close releases everything it owns.
func Open(cfg Config) *Server {
	cfg = cfg.withDefaults()
	var arena *exec.Arena
	if cfg.OffHeap {
		arena = exec.NewArenaOffHeap()
	} else {
		arena = exec.NewArena()
	}
	return &Server{
		cfg:   cfg,
		gate:  exec.NewGate(cfg.WorkerSlots),
		arena: arena,
		adm:   newAdmission(cfg.MemoryBudget, cfg.MaxQueued, cfg.AdmitWait),
		cache: newBuildCache(cfg.CacheBytes),
		met:   &metrics{},
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// RegisterRelation makes rel joinable under name, replacing any
// previous registration. The relation is fingerprinted here; the caller
// must not mutate it afterwards (the server and its cache alias it).
func (s *Server) RegisterRelation(name string, rel tuple.Relation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.rels == nil {
		s.rels = make(map[string]registeredRelation)
	}
	s.rels[name] = registeredRelation{rel: rel, fp: rel.Fingerprint()}
	return nil
}

// RelationInfo describes one registered relation.
type RelationInfo struct {
	Name        string `json:"name"`
	Tuples      int    `json:"tuples"`
	Fingerprint uint64 `json:"fingerprint"`
}

// Relations lists the registered relations (order unspecified).
func (s *Server) Relations() []RelationInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RelationInfo, 0, len(s.rels))
	for name, r := range s.rels {
		out = append(out, RelationInfo{Name: name, Tuples: len(r.rel), Fingerprint: r.fp})
	}
	return out
}

// Query is one join request against registered relations.
type Query struct {
	// Build and Probe name the registered build and probe relations.
	Build string `json:"build"`
	Probe string `json:"probe"`
	// Algorithm forces a fused Table 2 algorithm (e.g. "CPRL"); empty
	// selects the cached-table fast path when the query is cacheable
	// (inner join, null-free keys, cache enabled) and "NOP" otherwise.
	Algorithm string `json:"algorithm,omitempty"`
	// Design overrides the cached table design by wire name
	// ("chained", "linear", "robinhood", "array", "cht", "sparse");
	// empty uses the server default.
	Design string `json:"design,omitempty"`
	// Kind selects the join variant; non-inner kinds always run fused.
	Kind join.Kind `json:"kind,omitempty"`
	// NullableKeys declares null-keyed inputs (forces the fused path).
	NullableKeys bool `json:"nullable_keys,omitempty"`
	// Threads overrides the per-query worker count (0 = server default).
	Threads int `json:"threads,omitempty"`
	// Deadline bounds the query end to end (0 = server default; the
	// query returns context.DeadlineExceeded when it expires mid-run).
	Deadline time.Duration `json:"deadline,omitempty"`
	// NoCache bypasses the build cache (cold-path measurements).
	NoCache bool `json:"no_cache,omitempty"`
	// Trace records this query on its own trace.Tracer and returns the
	// spans in Response.Spans.
	Trace bool `json:"trace,omitempty"`
	// phaseHook is a test seam: invoked with each execution phase name,
	// like join.Options.PhaseHook.
	phaseHook func(phase string)
}

// Response is one query's outcome.
type Response struct {
	// Result is the join result (matches, checksum, phase times, stats).
	Result *join.Result `json:"result"`
	// CacheHit reports whether the build side came from the cache
	// (including waiting on a build another query started).
	CacheHit bool `json:"cache_hit"`
	// Latency is the end-to-end service time, admission wait included.
	Latency time.Duration `json:"latency"`
	// Spans holds the query's private trace when Query.Trace was set.
	Spans []trace.Span `json:"spans,omitempty"`
}

// Join runs one query. It is the service entry point: resolve
// relations, apply the deadline, admit (or shed), then run either the
// cached probe-only fast path or a fused algorithm. Cancellation and
// deadline expiry propagate to the execution layer's morsel boundaries,
// so workers stop within one morsel.
func (s *Server) Join(ctx context.Context, q Query) (*Response, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	build, okB := s.rels[q.Build]
	probe, okP := s.rels[q.Probe]
	if okB && okP {
		s.wg.Add(1)
	}
	s.mu.RUnlock()
	if !okB {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRelation, q.Build)
	}
	if !okP {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRelation, q.Probe)
	}
	defer s.wg.Done()

	deadline := q.Deadline
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	design := s.cfg.Design
	if q.Design != "" {
		var err error
		design, err = join.ParseTableDesign(q.Design)
		if err != nil {
			return nil, err
		}
	}
	threads := q.Threads
	if threads <= 0 {
		threads = s.cfg.Threads
	}
	opts := &join.Options{
		Threads:      threads,
		Arena:        s.arena,
		Gate:         s.gate,
		Kind:         q.Kind,
		NullableKeys: q.NullableKeys,
		PhaseHook:    q.phaseHook,
	}
	var tr *trace.Tracer
	var trRelease func()
	if q.Trace {
		// A fresh tracer per query is the isolation contract: two
		// overlapping traced queries never share a timeline. Acquire
		// arms trace's deterministic reuse guard for the duration.
		tr = trace.New()
		trRelease = tr.Acquire()
		opts.Tracer = tr
	}

	cacheable := q.Algorithm == "" && q.Kind == join.Inner && !q.NullableKeys && !q.NoCache
	start := time.Now()
	var res *join.Result
	var hit bool
	var err error
	if cacheable {
		res, hit, err = s.cachedJoin(ctx, build, probe, design, opts)
	} else {
		res, err = s.fusedJoin(ctx, build, probe, q.Algorithm, opts)
	}
	latency := time.Since(start)
	s.met.observe(latency, cacheable, hit, err)
	if tr != nil {
		trRelease()
	}
	if err != nil {
		return nil, err
	}
	resp := &Response{Result: res, CacheHit: hit, Latency: latency}
	if tr != nil {
		resp.Spans = tr.Spans()
	}
	return resp, nil
}

// cachedJoin is the fingerprint-keyed fast path: pin (or become the
// builder of) the cached table, then run probe-only. The second return
// reports a cache hit.
func (s *Server) cachedJoin(ctx context.Context, build, probe registeredRelation, design join.TableDesign, opts *join.Options) (*join.Result, bool, error) {
	e, leader := s.cache.pin(cacheKey{fp: build.fp, design: design})
	defer s.cache.unpin(e)
	if leader {
		// Cold: reserve the build footprint, build, publish, probe. The
		// reservation is released when the build phase's transient
		// memory dies; the finished table is owned (and bounded) by the
		// cache from publish onwards.
		release, err := s.adm.admit(ctx, footprintBytes(len(build.rel)))
		if err != nil {
			s.cache.fail(e, err)
			return nil, false, err
		}
		bt, err := join.BuildTable(ctx, build.rel, design, opts)
		if err != nil {
			release()
			s.cache.fail(e, err)
			return nil, false, err
		}
		s.cache.publish(e, bt)
		release()
		res, err := join.ProbeTable(ctx, bt, probe.rel, opts)
		return res, false, err
	}
	// Warm (or warming): wait for the table, then probe. The pin taken
	// above guarantees the storage outlives the probe even if the entry
	// is evicted meanwhile.
	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, true, ctx.Err()
	}
	if e.err != nil {
		return nil, true, e.err
	}
	res, err := join.ProbeTable(ctx, e.bt, probe.rel, opts)
	return res, true, err
}

// fusedJoin runs a full Table 2 algorithm under admission (the
// non-cacheable path: forced algorithms, non-inner kinds, nullable
// keys, NoCache).
func (s *Server) fusedJoin(ctx context.Context, build, probe registeredRelation, algorithm string, opts *join.Options) (*join.Result, error) {
	release, err := s.adm.admit(ctx, footprintBytes(len(build.rel)))
	if err != nil {
		return nil, err
	}
	defer release()
	if algorithm == "" {
		algorithm = "NOP"
	}
	alg, err := join.New(algorithm)
	if err != nil {
		return nil, err
	}
	return alg.RunContext(ctx, build.rel, probe.rel, opts)
}

// FlushCache evicts every cached table not currently pinned and
// returns how many entries were dropped (cold-path measurements).
func (s *Server) FlushCache() int { return s.cache.flush() }

// Close drains in-flight queries, releases every cached table, and
// destroys the private arena (returning off-heap regions to the OS).
// After Close the offheap region balance is back to its pre-Open level
// — the leak assertion the loadtest self-check runs.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	s.cache.flush()
	if out := s.arena.Outstanding(); out != 0 {
		s.arena.Destroy()
		return fmt.Errorf("server: arena imbalance at close: %d buffers outstanding", out)
	}
	s.arena.Destroy()
	return nil
}
