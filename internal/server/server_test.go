package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mmjoin/internal/datagen"
	"mmjoin/internal/join"
)

// testWorkload returns a small deterministic build/probe pair plus the
// reference join's matches and checksum.
func testWorkload(t *testing.T, buildN, probeN int) (build, probe string, srv *Server, wantMatches int64, wantChecksum uint64) {
	t.Helper()
	srv = Open(Config{Threads: 2, WorkerSlots: 4})
	b := pkRelation(buildN)
	p := datagen.UniformRelation(probeN, buildN, 8)
	if err := srv.RegisterRelation("b", b); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterRelation("p", p); err != nil {
		t.Fatal(err)
	}
	ref, err := (join.Reference{}).Run(b, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return "b", "p", srv, ref.Matches, ref.Checksum
}

// TestCacheHitMissCorrectness is the service-level correctness table:
// for every table design, a cold query (miss, builds) and a warm query
// (hit, probe-only) return the reference matches and checksum — a
// cache hit is semantically invisible.
func TestCacheHitMissCorrectness(t *testing.T) {
	b, p, srv, wantM, wantC := testWorkload(t, 4096, 16384)
	for _, design := range join.TableDesigns() {
		t.Run(design.String(), func(t *testing.T) {
			srv.FlushCache()
			for i, wantHit := range []bool{false, true} {
				resp, err := srv.Join(context.Background(), Query{Build: b, Probe: p, Design: design.String()})
				if err != nil {
					t.Fatal(err)
				}
				if resp.CacheHit != wantHit {
					t.Fatalf("query %d: CacheHit = %v, want %v", i, resp.CacheHit, wantHit)
				}
				if resp.Result.Matches != wantM || resp.Result.Checksum != wantC {
					t.Fatalf("query %d (hit=%v): matches=%d checksum=%d, want %d/%d",
						i, wantHit, resp.Result.Matches, resp.Result.Checksum, wantM, wantC)
				}
				if wantHit && resp.Result.BuildOrPartition != 0 {
					t.Fatalf("hit carried a build phase: %v", resp.Result.BuildOrPartition)
				}
			}
		})
	}
	m := srv.Metrics()
	if m.Hits != int64(len(join.TableDesigns())) || m.Misses != int64(len(join.TableDesigns())) {
		t.Fatalf("metrics hits/misses = %d/%d, want %d each", m.Hits, m.Misses, len(join.TableDesigns()))
	}
}

// TestFusedPathMatchesReference covers the non-cacheable paths: forced
// algorithms and NoCache both bypass the cache and still agree with
// the reference.
func TestFusedPathMatchesReference(t *testing.T) {
	b, p, srv, wantM, wantC := testWorkload(t, 2048, 8192)
	for _, q := range []Query{
		{Build: b, Probe: p, NoCache: true},
		{Build: b, Probe: p, Algorithm: "CPRL"},
		{Build: b, Probe: p, Algorithm: "NOPA"},
	} {
		resp, err := srv.Join(context.Background(), q)
		if err != nil {
			t.Fatalf("%+v: %v", q, err)
		}
		if resp.CacheHit {
			t.Fatalf("%+v: unexpected cache hit", q)
		}
		if resp.Result.Matches != wantM || resp.Result.Checksum != wantC {
			t.Fatalf("%+v: matches=%d checksum=%d, want %d/%d",
				q, resp.Result.Matches, resp.Result.Checksum, wantM, wantC)
		}
	}
	if entries, _ := srv.cache.stats(); entries != 0 {
		t.Fatalf("fused queries populated the cache: %d entries", entries)
	}
}

// TestKindQueriesRunFused checks non-inner kinds take the fused path
// (cached tables cannot carry per-query outer/anti state) and return
// kind-correct results.
func TestKindQueriesRunFused(t *testing.T) {
	b, p, srv, _, _ := testWorkload(t, 1024, 4096)
	srv.mu.RLock()
	build, probe := srv.rels[b].rel, srv.rels[p].rel
	srv.mu.RUnlock()
	for _, kind := range []join.Kind{join.LeftOuter, join.LeftSemi, join.LeftAnti} {
		ref, err := (join.Reference{}).Run(build, probe, &join.Options{Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Join(context.Background(), Query{Build: b, Probe: p, Kind: kind})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if resp.CacheHit {
			t.Fatalf("%v: kind query hit the cache", kind)
		}
		if resp.Result.Matches != ref.Matches || resp.Result.Checksum != ref.Checksum {
			t.Fatalf("%v: matches=%d checksum=%d, want %d/%d",
				kind, resp.Result.Matches, resp.Result.Checksum, ref.Matches, ref.Checksum)
		}
	}
}

// TestDeadlineExpiresMidBuild arms a deadline shorter than a build
// stalled by the phase hook: the query must come back with
// DeadlineExceeded (not hang, not return a partial result), and the
// failed build must not poison the cache for the next query.
func TestDeadlineExpiresMidBuild(t *testing.T) {
	b, p, srv, wantM, wantC := testWorkload(t, 4096, 4096)
	q := Query{
		Build: b, Probe: p,
		Deadline: 30 * time.Millisecond,
		phaseHook: func(phase string) {
			if phase == "build" {
				time.Sleep(80 * time.Millisecond)
			}
		},
	}
	resp, err := srv.Join(context.Background(), q)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v (resp=%v), want DeadlineExceeded", err, resp)
	}
	// The expired build must not have cached anything; a clean retry
	// misses, rebuilds, and succeeds.
	resp, err = srv.Join(context.Background(), Query{Build: b, Probe: p})
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("retry after failed build reported a cache hit")
	}
	if resp.Result.Matches != wantM || resp.Result.Checksum != wantC {
		t.Fatalf("retry result wrong: %d/%d", resp.Result.Matches, resp.Result.Checksum)
	}
	if m := srv.Metrics(); m.Deadlines != 1 {
		t.Fatalf("deadline counter = %d, want 1", m.Deadlines)
	}
}

// TestCancelMidProbe cancels the caller's context once the execution
// reaches the probe phase; the query returns context.Canceled and the
// cached table stays usable for the next query.
func TestCancelMidProbe(t *testing.T) {
	b, p, srv, wantM, wantC := testWorkload(t, 4096, 16384)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q := Query{
		Build: b, Probe: p,
		phaseHook: func(phase string) {
			if phase == "probe" {
				cancel()
			}
		},
	}
	if _, err := srv.Join(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// The build completed before the cancel, so the table is cached and
	// intact: the follow-up is a hit with the right answer.
	resp, err := srv.Join(context.Background(), Query{Build: b, Probe: p})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit || resp.Result.Matches != wantM || resp.Result.Checksum != wantC {
		t.Fatalf("post-cancel query: hit=%v matches=%d checksum=%d, want true/%d/%d",
			resp.CacheHit, resp.Result.Matches, resp.Result.Checksum, wantM, wantC)
	}
}

// TestAdmissionShedsUnderOverload fills the budget with one stalled
// query and checks a second sheds with ErrOverloaded after its
// admission wait — typed rejection, no unbounded queue.
func TestAdmissionShedsUnderOverload(t *testing.T) {
	const buildN = 4096
	srv := Open(Config{
		Threads:      2,
		MemoryBudget: footprintBytes(buildN), // exactly one build fits
		MaxQueued:    4,
		AdmitWait:    20 * time.Millisecond,
	})
	defer srv.Close()
	b := pkRelation(buildN)
	p := datagen.UniformRelation(1024, buildN, 8)
	if err := srv.RegisterRelation("b", b); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterRelation("p", p); err != nil {
		t.Fatal(err)
	}

	holdRelease := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// NoCache keeps the whole build+probe under admission.
		_, err := srv.Join(context.Background(), Query{
			Build: "b", Probe: "p", NoCache: true,
			phaseHook: func(phase string) {
				if phase == "build" {
					close(started)
					<-holdRelease
				}
			},
		})
		if err != nil {
			t.Errorf("holder query: %v", err)
		}
	}()
	<-started

	if _, err := srv.Join(context.Background(), Query{Build: "b", Probe: "p", NoCache: true}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second query err = %v, want ErrOverloaded", err)
	}
	close(holdRelease)
	wg.Wait()
	if m := srv.Metrics(); m.Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", m.Shed)
	}
	// With the budget free again, the same query succeeds.
	if _, err := srv.Join(context.Background(), Query{Build: "b", Probe: "p", NoCache: true}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownRelationAndClose(t *testing.T) {
	srv := Open(Config{})
	if err := srv.RegisterRelation("b", datagen.UniformRelation(64, 64, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Join(context.Background(), Query{Build: "b", Probe: "nope"}); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("err = %v, want ErrUnknownRelation", err)
	}
	if _, err := srv.Join(context.Background(), Query{Build: "nope", Probe: "b"}); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("err = %v, want ErrUnknownRelation", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := srv.Join(context.Background(), Query{Build: "b", Probe: "b"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close err = %v, want ErrClosed", err)
	}
	if err := srv.RegisterRelation("c", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close register err = %v, want ErrClosed", err)
	}
}

// TestPerQueryTraceIsolation runs two traced queries concurrently and
// checks each Response carries only its own spans (distinct probe
// relations make the span sets distinguishable by their byte counts).
func TestPerQueryTraceIsolation(t *testing.T) {
	b, p, srv, _, _ := testWorkload(t, 2048, 8192)
	// Warm the cache so both traced queries run probe-only.
	if _, err := srv.Join(context.Background(), Query{Build: b, Probe: p}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	resps := make([]*Response, 8)
	errs := make([]error, 8)
	for i := range resps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = srv.Join(context.Background(), Query{Build: b, Probe: p, Trace: true})
		}(i)
	}
	wg.Wait()
	for i, resp := range resps {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if len(resp.Spans) == 0 {
			t.Fatalf("query %d: no spans", i)
		}
		for _, sp := range resp.Spans {
			if !strings.Contains(sp.Name, "probe") {
				t.Fatalf("query %d: unexpected span %q on a cached probe", i, sp.Name)
			}
		}
	}
}

func TestInvalidDesignRejected(t *testing.T) {
	b, p, srv, _, _ := testWorkload(t, 64, 64)
	if _, err := srv.Join(context.Background(), Query{Build: b, Probe: p, Design: "btree"}); err == nil {
		t.Fatal("bogus design accepted")
	}
}
