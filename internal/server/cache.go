package server

import (
	"container/list"
	"sync"

	"mmjoin/internal/join"
)

// cacheKey identifies one cached build table: the build relation's
// content fingerprint plus the table design built over it. Two
// registrations of identical content share entries; a re-registration
// with new content simply misses (the stale entry ages out by LRU).
type cacheKey struct {
	fp     uint64
	design join.TableDesign
}

// cacheEntry is one table's cache lifetime. States, in order:
//
//	building: in the index, ready open. The creating query (the
//	          "leader") builds; others pin and wait on ready.
//	ready:    ready closed with bt set; on the LRU list, bytes counted.
//	dead:     out of the index (evicted, flushed, or failed). Storage
//	          is released by whoever drops the refcount to zero — the
//	          evictor if no probes hold pins, else the last unpin.
//
// refs counts pins (queries between pin and unpin). All fields except
// bt/err after the ready barrier are guarded by buildCache.mu; waiters
// read bt and err only after <-ready, which orders them.
type cacheEntry struct {
	key   cacheKey
	ready chan struct{}
	bt    *join.BuiltTable
	err   error

	bytes int64
	refs  int
	dead  bool
	elem  *list.Element
}

// buildCache is the fingerprint-keyed build-side table cache: bounded
// by actual table bytes, evicting least-recently-pinned first. Its one
// subtle contract is lifetime under concurrency — eviction must never
// free a table a probe is reading, and a dead entry must be freed
// exactly once — which pin/unpin/evict encode with a refcount instead
// of relying on probes being short.
type buildCache struct {
	capacity int64

	mu      sync.Mutex
	bytes   int64
	entries map[cacheKey]*cacheEntry
	lru     list.List // front = most recently pinned; ready entries only
}

func newBuildCache(capacity int64) *buildCache {
	return &buildCache{capacity: capacity, entries: make(map[cacheKey]*cacheEntry)}
}

// pin returns the entry for key with its refcount raised. leader=true
// means the caller created the entry and owns the build: it must call
// exactly one of publish or fail before unpinning. leader=false means
// the caller waits on e.ready, then reads e.err/e.bt.
func (c *buildCache) pin(key cacheKey) (e *cacheEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		e.refs++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		return e, false
	}
	e = &cacheEntry{key: key, ready: make(chan struct{}), refs: 1}
	c.entries[key] = e
	return e, true
}

// publish transitions a building entry to ready: account its bytes,
// put it on the LRU, wake waiters, and evict over capacity. If the
// entry was flushed while building (dead already), the table is not
// indexed; it dies when its current pins drain.
func (c *buildCache) publish(e *cacheEntry, bt *join.BuiltTable) {
	c.mu.Lock()
	e.bt = bt
	e.bytes = bt.SizeBytes()
	var victims []*cacheEntry
	if !e.dead {
		c.bytes += e.bytes
		e.elem = c.lru.PushFront(e)
		victims = c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	releaseAll(victims)
}

// fail transitions a building entry to dead without a table, so later
// queries retry the build instead of caching the error.
func (c *buildCache) fail(e *cacheEntry, err error) {
	c.mu.Lock()
	e.err = err
	e.dead = true
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	c.mu.Unlock()
	close(e.ready)
}

// unpin drops one pin; the last pin off a dead entry frees its table.
func (c *buildCache) unpin(e *cacheEntry) {
	c.mu.Lock()
	e.refs--
	free := e.dead && e.refs == 0 && e.bt != nil
	c.mu.Unlock()
	if free {
		e.bt.Release()
	}
}

// evictLocked drops least-recently-pinned ready entries until the cache
// fits its capacity. Evicted entries leave the index immediately —
// their bytes stop counting and new queries rebuild — but only entries
// with no pins are returned for release; pinned ones are freed by
// their last unpin. Requires c.mu.
func (c *buildCache) evictLocked() []*cacheEntry {
	var victims []*cacheEntry
	for c.bytes > c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		e.elem = nil
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		e.dead = true
		if e.refs == 0 {
			victims = append(victims, e)
		}
	}
	return victims
}

// flush evicts every ready entry regardless of capacity and returns how
// many were dropped. Building entries are left to their leaders.
func (c *buildCache) flush() int {
	c.mu.Lock()
	var victims []*cacheEntry
	n := 0
	for elem := c.lru.Front(); elem != nil; {
		next := elem.Next()
		e := elem.Value.(*cacheEntry)
		c.lru.Remove(elem)
		e.elem = nil
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		e.dead = true
		if e.refs == 0 {
			victims = append(victims, e)
		}
		n++
		elem = next
	}
	c.mu.Unlock()
	releaseAll(victims)
	return n
}

func releaseAll(victims []*cacheEntry) {
	for _, e := range victims {
		if e.bt != nil {
			e.bt.Release()
		}
	}
}

// stats reports the cache's resident state for metrics.
func (c *buildCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes
}
