package spill

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mmjoin/internal/exec"
	"mmjoin/internal/tuple"
)

// splitmix64 is the test's deterministic tuple source.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

func testTuples(seed uint64, n int) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		h := splitmix64(seed + uint64(i))
		out[i] = tuple.Tuple{Key: tuple.Key(h), Payload: tuple.Payload(h >> 32)}
	}
	return out
}

func writeFile(t *testing.T, m *Manager, name string, ts []tuple.Tuple) {
	t.Helper()
	w, err := m.Create(name)
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	// Split the write to exercise multi-call streaming.
	if err := w.Write(ts[:len(ts)/2]); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Write(ts[len(ts)/2:]); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestRoundTripByteIdentical is the spill-format property test: the
// same tuple sequence written twice produces byte-identical
// (checksummed) files, and reading either back yields exactly the
// written tuples through an arena-balanced buffer.
func TestRoundTripByteIdentical(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 257, 1 << 13, 3*stageBytes/tuple.Bytes + 5} {
		arena := exec.NewArena()
		m := NewManager(t.TempDir(), arena, nil)
		ts := testTuples(uint64(n)*1315423911+1, n)
		writeFile(t, m, "a.spill", ts)
		writeFile(t, m, "b.spill", ts)

		rawA, err := os.ReadFile(filepath.Join(m.dir, "a.spill"))
		if err != nil {
			t.Fatal(err)
		}
		rawB, err := os.ReadFile(filepath.Join(m.dir, "b.spill"))
		if err != nil {
			t.Fatal(err)
		}
		if string(rawA) != string(rawB) {
			t.Fatalf("n=%d: two writes of the same tuples differ on disk (%d vs %d bytes)", n, len(rawA), len(rawB))
		}
		if want := headerBytes + n*tuple.Bytes + trailerBytes; len(rawA) != want {
			t.Fatalf("n=%d: file is %d bytes, want %d", n, len(rawA), want)
		}

		got, bytes, err := m.ReadAll("a.spill")
		if err != nil {
			t.Fatalf("n=%d: ReadAll: %v", n, err)
		}
		if bytes != int64(len(rawA)) {
			t.Fatalf("n=%d: ReadAll reported %d bytes, file has %d", n, bytes, len(rawA))
		}
		if len(got) != n {
			t.Fatalf("n=%d: read %d tuples", n, len(got))
		}
		for i := range got {
			if got[i] != ts[i] {
				t.Fatalf("n=%d: tuple %d: got %v, want %v", n, i, got[i], ts[i])
			}
		}
		m.Release(got)
		if out := arena.Outstanding(); out != 0 {
			t.Fatalf("n=%d: arena outstanding %d after release", n, out)
		}
		if m.Live() != 2 {
			t.Fatalf("n=%d: %d live files, want 2", n, m.Live())
		}
		if err := m.Remove("a.spill"); err != nil {
			t.Fatal(err)
		}
		if err := m.Cleanup(); err != nil {
			t.Fatal(err)
		}
		if m.Live() != 0 {
			t.Fatalf("n=%d: %d live files after cleanup", n, m.Live())
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	arena := exec.NewArena()
	m := NewManager(t.TempDir(), arena, nil)
	ts := testTuples(3, 1000)
	writeFile(t, m, "p.spill", ts)
	path := filepath.Join(m.dir, "p.spill")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte: the checksum must catch it.
	raw[headerBytes+100] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.ReadAll("p.spill"); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted file read: err = %v, want ErrChecksum", err)
	}
	// Truncation must be caught too.
	if err := os.WriteFile(path, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.ReadAll("p.spill"); !errors.Is(err, ErrChecksum) {
		t.Fatalf("truncated file read: err = %v, want ErrChecksum", err)
	}
	if out := arena.Outstanding(); out != 0 {
		t.Fatalf("arena outstanding %d after failed reads", out)
	}
	if err := m.Cleanup(); err != nil {
		t.Fatal(err)
	}
}

// TestInjectedFaults drives each injector mode through the operation it
// targets and asserts the clean-failure contract: a wrapped ErrInjected
// (or ErrChecksum for corruption, which must be caught organically),
// zero leaked files after Cleanup, and a balanced arena.
func TestInjectedFaults(t *testing.T) {
	ts := testTuples(9, 512)
	t.Run("create-fail", func(t *testing.T) {
		m := NewManager(t.TempDir(), exec.NewArena(), NewInjector(CreateFail))
		if _, err := m.Create("p.spill"); !errors.Is(err, ErrInjected) {
			t.Fatalf("Create err = %v, want ErrInjected", err)
		}
		if m.Live() != 0 {
			t.Fatalf("%d live files after failed create", m.Live())
		}
		// The single-shot fault must not re-fire.
		writeFile(t, m, "q.spill", ts)
		if err := m.Cleanup(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("short-write", func(t *testing.T) {
		m := NewManager(t.TempDir(), exec.NewArena(), NewInjector(ShortWrite))
		w, err := m.Create("p.spill")
		if err != nil {
			t.Fatal(err)
		}
		werr := w.Write(ts)
		cerr := w.Close()
		if !errors.Is(cerr, ErrInjected) {
			t.Fatalf("Write/Close err = %v / %v, want ErrInjected", werr, cerr)
		}
		if err := m.Cleanup(); err != nil {
			t.Fatal(err)
		}
		if m.Live() != 0 {
			t.Fatalf("%d live files after cleanup", m.Live())
		}
	})
	t.Run("read-corrupt", func(t *testing.T) {
		arena := exec.NewArena()
		m := NewManager(t.TempDir(), arena, NewInjector(ReadCorrupt))
		writeFile(t, m, "p.spill", ts)
		if _, _, err := m.ReadAll("p.spill"); !errors.Is(err, ErrChecksum) {
			t.Fatalf("ReadAll err = %v, want ErrChecksum", err)
		}
		// Single shot: the second read runs clean.
		got, _, err := m.ReadAll("p.spill")
		if err != nil {
			t.Fatalf("second ReadAll: %v", err)
		}
		m.Release(got)
		if out := arena.Outstanding(); out != 0 {
			t.Fatalf("arena outstanding %d", out)
		}
		if err := m.Cleanup(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCleanupRemovesDirectory proves the error-path contract the oracle
// leans on: after Cleanup the parent directory holds nothing, whether
// or not files were consumed.
func TestCleanupRemovesDirectory(t *testing.T) {
	parent := t.TempDir()
	m := NewManager(parent, exec.NewArena(), nil)
	writeFile(t, m, "a.spill", testTuples(1, 100))
	writeFile(t, m, "b.spill", testTuples(2, 100))
	if err := m.Cleanup(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d entries left under parent after cleanup", len(ents))
	}
	// Idempotent.
	if err := m.Cleanup(); err != nil {
		t.Fatal(err)
	}
}
