// Package spill is the temp-file layer under the memory-budgeted hybrid
// hash join (internal/join, "HYBRID"): partitions that do not fit the
// build-side budget are written to disk and read back per co-partition
// for a recursive join pass.
//
// The format is deliberately dumb and fully checked: a fixed header
// (magic + version), the raw 8-byte <key, payload> tuples in partition
// order, and a trailer carrying the tuple count and an FNV-1a checksum
// over the payload bytes. Writes stream through a small staging buffer;
// reads load the whole file, verify length, count and checksum, and
// decode into an arena-accounted tuple buffer that the caller releases.
// A Manager tracks every file it creates so a join execution can prove —
// and the differential oracle does prove — that no temp file outlives
// the run, even on injected I/O faults (see inject.go).
package spill

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mmjoin/internal/exec"
	"mmjoin/internal/tuple"
)

const (
	// magic identifies a spill file ("MMJS" little-endian).
	magic uint32 = 0x534a4d4d
	// version is the format version; bumped on any layout change.
	version uint32 = 1
	// headerBytes and trailerBytes frame the tuple payload.
	headerBytes  = 8
	trailerBytes = 16
	// stageBytes is the writer's staging-buffer size: one write syscall
	// per 64 KB of tuples keeps the fault surface (and test runtime)
	// small without per-tuple syscalls.
	stageBytes = 64 << 10
)

// ErrChecksum marks a spill file whose trailer checksum (or framing)
// does not match its contents — corruption between write and read.
var ErrChecksum = errors.New("spill: checksum mismatch")

// fnv1aInit/fnv1aPrime are the standard 64-bit FNV-1a parameters.
const (
	fnv1aInit  uint64 = 0xcbf29ce484222325
	fnv1aPrime uint64 = 0x100000001b3
)

func fnv1a(sum uint64, b []byte) uint64 {
	for _, c := range b {
		sum = (sum ^ uint64(c)) * fnv1aPrime
	}
	return sum
}

// Manager owns the spill files of one join execution: it creates the
// spill directory lazily (under parent, or the OS temp dir when parent
// is empty), hands out writers and readers, and tracks every live file
// so Cleanup can prove nothing leaks. Methods are safe for concurrent
// use by pool workers.
type Manager struct {
	parent string
	arena  *exec.Arena
	inj    *Injector

	mu   sync.Mutex
	dir  string
	live map[string]struct{}
}

// NewManager returns a manager spilling under parent ("" = OS temp dir)
// through the given arena. inj, when non-nil, arms one injected fault
// (see Injector); nil runs clean.
func NewManager(parent string, arena *exec.Arena, inj *Injector) *Manager {
	if arena == nil {
		arena = exec.Shared
	}
	return &Manager{parent: parent, arena: arena, inj: inj, live: map[string]struct{}{}}
}

// ensureDir creates the spill directory on first use.
func (m *Manager) ensureDir() (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dir != "" {
		return m.dir, nil
	}
	dir, err := os.MkdirTemp(m.parent, "mmjoin-spill-*")
	if err != nil {
		return "", fmt.Errorf("spill: create spill dir: %w", err)
	}
	m.dir = dir
	return dir, nil
}

// track registers a created file; untrack removes it from the live set.
func (m *Manager) track(path string) {
	m.mu.Lock()
	m.live[path] = struct{}{}
	m.mu.Unlock()
}

func (m *Manager) untrack(path string) {
	m.mu.Lock()
	delete(m.live, path)
	m.mu.Unlock()
}

// Live returns the number of spill files created and not yet removed.
// A clean run ends at zero before Cleanup.
func (m *Manager) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.live)
}

// Cleanup removes every live spill file and the spill directory. It is
// idempotent and safe to call on error paths; the first removal error
// is returned after attempting all of them.
func (m *Manager) Cleanup() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for path := range m.live {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) && first == nil {
			first = fmt.Errorf("spill: cleanup %s: %w", filepath.Base(path), err)
		}
		delete(m.live, path)
	}
	if m.dir != "" {
		if err := os.Remove(m.dir); err != nil && !os.IsNotExist(err) && first == nil {
			first = fmt.Errorf("spill: cleanup dir: %w", err)
		}
		m.dir = ""
	}
	return first
}

// Create opens a named spill file for writing and stages its header.
func (m *Manager) Create(name string) (*Writer, error) {
	dir, err := m.ensureDir()
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, name)
	if m.inj.trip(CreateFail) {
		return nil, fmt.Errorf("spill: create %s: %w", name, ErrInjected)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("spill: create %s: %w", name, err)
	}
	m.track(path)
	w := &Writer{m: m, f: f, name: name, buf: make([]byte, 0, stageBytes), sum: fnv1aInit}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	w.buf = append(w.buf, hdr[:]...)
	return w, nil
}

// Remove deletes a spill file after its contents were consumed.
func (m *Manager) Remove(name string) error {
	m.mu.Lock()
	dir := m.dir
	m.mu.Unlock()
	path := filepath.Join(dir, name)
	m.untrack(path)
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("spill: remove %s: %w", name, err)
	}
	return nil
}

// Writer streams tuples into one spill file. Not safe for concurrent
// use; one worker owns one writer.
type Writer struct {
	m     *Manager
	f     *os.File
	name  string
	buf   []byte
	count uint64
	sum   uint64
	bytes int64
	err   error
}

// Write appends the tuples to the file.
func (w *Writer) Write(ts []tuple.Tuple) error {
	if w.err != nil {
		return w.err
	}
	var enc [tuple.Bytes]byte
	for _, t := range ts {
		binary.LittleEndian.PutUint32(enc[0:], t.Key)
		binary.LittleEndian.PutUint32(enc[4:], t.Payload)
		w.sum = fnv1a(w.sum, enc[:])
		w.buf = append(w.buf, enc[:]...)
		if len(w.buf) >= stageBytes {
			if err := w.flush(); err != nil {
				return err
			}
		}
	}
	w.count += uint64(len(ts))
	return nil
}

// flush drains the staging buffer to disk, failing on short writes.
func (w *Writer) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	b := w.buf
	if w.m.inj.trip(ShortWrite) {
		n, _ := w.f.Write(b[:len(b)/2])
		w.err = fmt.Errorf("spill: write %s: wrote %d of %d bytes: %w", w.name, n, len(b), ErrInjected)
		return w.err
	}
	n, err := w.f.Write(b)
	w.bytes += int64(n)
	if err != nil {
		w.err = fmt.Errorf("spill: write %s: %w", w.name, err)
		return w.err
	}
	if n < len(b) {
		w.err = fmt.Errorf("spill: write %s: wrote %d of %d bytes", w.name, n, len(b))
		return w.err
	}
	w.buf = w.buf[:0]
	return nil
}

// Close appends the count+checksum trailer and closes the file. The
// file stays tracked by the manager either way: consumed files are
// dropped via Manager.Remove, failed ones by Manager.Cleanup.
func (w *Writer) Close() error {
	if w.err == nil {
		var tr [trailerBytes]byte
		binary.LittleEndian.PutUint64(tr[0:], w.count)
		binary.LittleEndian.PutUint64(tr[8:], w.sum)
		w.buf = append(w.buf, tr[:]...)
		w.flush()
	}
	if cerr := w.f.Close(); cerr != nil && w.err == nil {
		w.err = fmt.Errorf("spill: close %s: %w", w.name, cerr)
	}
	return w.err
}

// Bytes returns the bytes written to disk so far.
func (w *Writer) Bytes() int64 { return w.bytes }

// ReadAll loads a named spill file, verifies its framing, count and
// checksum, and decodes it into a tuple buffer from the manager's
// arena. The caller owns the buffer and must return it with
// Release. The second return is the file size on disk (for byte
// accounting). A zero-tuple file returns a nil relation.
func (m *Manager) ReadAll(name string) (tuple.Relation, int64, error) {
	m.mu.Lock()
	dir := m.dir
	m.mu.Unlock()
	raw, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, 0, fmt.Errorf("spill: read %s: %w", name, err)
	}
	if m.inj.trip(ReadCorrupt) && len(raw) > headerBytes {
		// Corrupt one payload byte in place: the checksum verification
		// below must catch it, exactly as it would catch real bit rot.
		raw[headerBytes] ^= 0x40
	}
	if len(raw) < headerBytes+trailerBytes {
		return nil, 0, fmt.Errorf("spill: read %s: truncated (%d bytes): %w", name, len(raw), ErrChecksum)
	}
	if got := binary.LittleEndian.Uint32(raw[0:]); got != magic {
		return nil, 0, fmt.Errorf("spill: read %s: bad magic %#x: %w", name, got, ErrChecksum)
	}
	if got := binary.LittleEndian.Uint32(raw[4:]); got != version {
		return nil, 0, fmt.Errorf("spill: read %s: version %d, want %d: %w", name, got, version, ErrChecksum)
	}
	body := raw[headerBytes : len(raw)-trailerBytes]
	count := binary.LittleEndian.Uint64(raw[len(raw)-trailerBytes:])
	sum := binary.LittleEndian.Uint64(raw[len(raw)-8:])
	if uint64(len(body)) != count*tuple.Bytes {
		return nil, 0, fmt.Errorf("spill: read %s: %d payload bytes for %d tuples: %w", name, len(body), count, ErrChecksum)
	}
	if got := fnv1a(fnv1aInit, body); got != sum {
		return nil, 0, fmt.Errorf("spill: read %s: checksum %#x, trailer %#x: %w", name, got, sum, ErrChecksum)
	}
	out := m.arena.Tuples(int(count))
	for i := range out {
		out[i] = tuple.Tuple{
			Key:     binary.LittleEndian.Uint32(body[i*tuple.Bytes:]),
			Payload: binary.LittleEndian.Uint32(body[i*tuple.Bytes+4:]),
		}
	}
	return out, int64(len(raw)), nil
}

// Release returns a ReadAll buffer to the manager's arena.
func (m *Manager) Release(rel tuple.Relation) {
	if rel != nil {
		m.arena.PutTuples(rel)
	}
}
