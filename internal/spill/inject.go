package spill

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrInjected marks a deliberately injected spill fault: the
// differential oracle and the regression tests arm one of the Modes
// below and assert the join surfaces it as a clean wrapped error with
// no leaked temp files and a balanced arena.
var ErrInjected = errors.New("spill: injected fault")

// Mode selects which spill operation an Injector sabotages.
type Mode int

const (
	// None injects nothing.
	None Mode = iota
	// CreateFail makes the next temp-file creation fail.
	CreateFail
	// ShortWrite makes the next buffer flush report a short count.
	ShortWrite
	// ReadCorrupt flips one payload byte on the next file read, so the
	// trailer checksum verification must catch it.
	ReadCorrupt
)

func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case CreateFail:
		return "spill-create-fail"
	case ShortWrite:
		return "spill-short-write"
	case ReadCorrupt:
		return "spill-read-corrupt"
	}
	return fmt.Sprintf("spill.Mode(%d)", int(m))
}

// Injector arms exactly one fault: the first operation matching its
// mode trips it, every later one runs clean. Firing once keeps the
// failure deterministic under any worker schedule — whichever worker
// reaches the operation first takes the error, and the error content
// does not depend on which one it was.
type Injector struct {
	mode  Mode
	fired atomic.Bool
}

// NewInjector returns an injector for the mode, or nil for None (a nil
// *Injector is valid and never fires).
func NewInjector(mode Mode) *Injector {
	if mode == None {
		return nil
	}
	return &Injector{mode: mode}
}

// trip reports whether the fault should fire for an operation of the
// given mode, consuming the single shot.
func (i *Injector) trip(m Mode) bool {
	if i == nil || i.mode != m {
		return false
	}
	return i.fired.CompareAndSwap(false, true)
}
