package datagen

import (
	"bytes"
	"strings"
	"testing"
)

func TestWorkloadRoundTrip(t *testing.T) {
	w, err := Generate(Config{BuildSize: 1000, ProbeSize: 3000, Zipf: 0.5, HoleFactor: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain != w.Domain {
		t.Fatalf("domain %d != %d", got.Domain, w.Domain)
	}
	if len(got.Build) != len(w.Build) || len(got.Probe) != len(w.Probe) {
		t.Fatal("lengths changed")
	}
	for i := range w.Build {
		if got.Build[i] != w.Build[i] {
			t.Fatalf("build tuple %d differs", i)
		}
	}
	for i := range w.Probe {
		if got.Probe[i] != w.Probe[i] {
			t.Fatalf("probe tuple %d differs", i)
		}
	}
}

func TestReadWorkloadRejectsGarbage(t *testing.T) {
	if _, err := ReadWorkload(strings.NewReader("not a workload at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadWorkload(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadWorkloadRejectsTruncation(t *testing.T) {
	w, _ := Generate(Config{BuildSize: 100, ProbeSize: 100, Seed: 1})
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, w); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-13]
	if _, err := ReadWorkload(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated workload accepted")
	}
}

func TestReadWorkloadRejectsWrongVersion(t *testing.T) {
	w, _ := Generate(Config{BuildSize: 1, ProbeSize: 1, Seed: 1})
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, w); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte
	if _, err := ReadWorkload(bytes.NewReader(b)); err == nil {
		t.Fatal("wrong version accepted")
	}
}
