// Package datagen generates the synthetic workloads of Schuh et al.
// (SIGMOD 2016): dense unique primary-key build relations, uniform
// foreign-key probe relations, Zipf-skewed probe relations following the
// generator of Gray et al. (SIGMOD 1994), and sparse key domains with
// holes (Appendix C).
//
// All generators are deterministic for a given seed so that every
// experiment in the harness is reproducible.
package datagen

import (
	"fmt"
	"math"

	"mmjoin/internal/exec"
	"mmjoin/internal/tuple"
)

// rng is a splitmix64 pseudo-random generator: tiny state, excellent
// statistical quality for workload generation, and far cheaper than
// math/rand for the billions of draws the large experiments make.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n). n must be > 0.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Config describes a PK/FK workload in the paper's setup: the build
// relation R carries unique keys (dense unless HoleFactor > 1), and the
// probe relation S references those keys.
type Config struct {
	// BuildSize is |R|, the number of build tuples.
	BuildSize int
	// ProbeSize is |S|, the number of probe tuples.
	ProbeSize int
	// Zipf is the skew factor theta for the probe-side key frequency.
	// 0 means uniform. The paper sweeps {0, 0.5, 0.9, 0.99} (Appendix A).
	Zipf float64
	// HoleFactor k spreads the |R| unique keys over a domain of size
	// k*|R| (Appendix C). 0 or 1 means a dense domain.
	HoleFactor int
	// NullFrac is the fraction of tuples on each side whose key is
	// replaced by tuple.NullKey after generation. NULL keys never join
	// (not even with each other), so they only produce output through
	// the outer/anti join variants. 0 keeps the paper's all-valid setup.
	NullFrac float64
	// Seed makes generation deterministic.
	Seed uint64
}

// DomainSize returns the size of the key domain the build keys are drawn
// from: |R| for dense workloads, k*|R| with holes.
func (c Config) DomainSize() int {
	k := c.HoleFactor
	if k < 1 {
		k = 1
	}
	return c.BuildSize * k
}

// Validate reports whether the configuration is generatable.
func (c Config) Validate() error {
	if c.BuildSize <= 0 {
		return fmt.Errorf("datagen: BuildSize must be positive, got %d", c.BuildSize)
	}
	if c.ProbeSize < 0 {
		return fmt.Errorf("datagen: ProbeSize must be non-negative, got %d", c.ProbeSize)
	}
	if c.Zipf < 0 || c.Zipf >= 1 {
		return fmt.Errorf("datagen: Zipf factor must be in [0,1), got %g", c.Zipf)
	}
	if c.DomainSize() > math.MaxUint32 {
		// Strictly greater: a domain of exactly 2^32-1 keeps the largest
		// generated key at 2^32-2, one below the tuple.NullKey sentinel.
		return fmt.Errorf("datagen: domain size %d exceeds the 4-byte key space", c.DomainSize())
	}
	if c.NullFrac < 0 || c.NullFrac > 1 {
		return fmt.Errorf("datagen: NullFrac must be in [0,1], got %g", c.NullFrac)
	}
	return nil
}

// Workload is a generated pair of join relations plus the key domain they
// were drawn from.
type Workload struct {
	Build tuple.Relation
	Probe tuple.Relation
	// Domain is the size of the key universe (keys are in [0, Domain)).
	Domain int
	Config Config
	// arena is non-nil when Build and Probe were materialized from an
	// arena (possibly off-heap) via GenerateArena; Free returns them.
	arena *exec.Arena
}

// Free returns arena-materialized relations to their arena. A no-op for
// Generate'd (heap) workloads and idempotent; the relations must not be
// used afterwards.
func (w *Workload) Free() {
	if w.arena == nil {
		return
	}
	if w.Build != nil {
		w.arena.PutTuples(w.Build)
		w.Build = nil
	}
	if w.Probe != nil {
		w.arena.PutTuples(w.Probe)
		w.Probe = nil
	}
}

// Generate produces the workload described by c on the Go heap.
func Generate(c Config) (*Workload, error) {
	return GenerateArena(c, nil)
}

// GenerateArena is Generate with both relations materialized from the
// arena — with an off-heap arena the GC never scans multi-gigabyte
// inputs, which is where the big-workload experiments spend most of
// their mark time otherwise. The caller owns the storage and must call
// the workload's Free; a nil arena gives plain heap allocation.
func GenerateArena(c Config, a *exec.Arena) (*Workload, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	r := newRNG(c.Seed)
	keys := buildKeys(c, r)
	build := allocRelation(a, c.BuildSize)
	for i, k := range keys {
		// Payload carries the row id, mirroring the paper's TPC-H
		// representation and letting tests verify exact matches.
		build[i] = tuple.Tuple{Key: k, Payload: tuple.Payload(i)}
	}
	probe := probeRelation(c, keys, r, allocRelation(a, c.ProbeSize))
	if c.NullFrac > 0 {
		// Null the two sides from independent deterministic streams so
		// the same rows go null regardless of relation sizes on the
		// other side. Payloads keep their row ids: an outer join can
		// still identify which row produced each padded output tuple.
		nullKeys(build, c.NullFrac, newRNG(c.Seed^0xb5297a4d))
		nullKeys(probe, c.NullFrac, newRNG(c.Seed^0x68e31da4))
	}
	return &Workload{Build: build, Probe: probe, Domain: c.DomainSize(), Config: c, arena: a}, nil
}

// allocRelation draws an n-tuple relation from the arena (every slot is
// overwritten by the generators, so the arbitrary-contents contract of
// Arena.Tuples is fine) or from the heap when a is nil.
func allocRelation(a *exec.Arena, n int) tuple.Relation {
	if a == nil {
		return make(tuple.Relation, n)
	}
	return a.Tuples(n)
}

// nullKeys replaces each tuple's key with tuple.NullKey independently
// with probability frac.
func nullKeys(rel tuple.Relation, frac float64, r *rng) {
	for i := range rel {
		if r.float64() < frac {
			rel[i].Key = tuple.NullKey
		}
	}
}

// buildKeys returns the |R| unique build keys in randomly shuffled order.
// Dense workloads use exactly [0, |R|); hole workloads pick |R| distinct
// keys from [0, k*|R|) via a partial Fisher-Yates over the full domain
// performed with a sparse map to avoid materializing k*|R| entries.
func buildKeys(c Config, r *rng) []tuple.Key {
	n := c.BuildSize
	domain := c.DomainSize()
	keys := make([]tuple.Key, n)
	if domain == n {
		for i := range keys {
			keys[i] = tuple.Key(i)
		}
	} else {
		// Sparse Fisher-Yates: draw n distinct values from [0, domain).
		swapped := make(map[int]int)
		for i := 0; i < n; i++ {
			j := i + r.intn(domain-i)
			vi, ok := swapped[i]
			if !ok {
				vi = i
			}
			vj, ok := swapped[j]
			if !ok {
				vj = j
			}
			keys[i] = tuple.Key(vj)
			swapped[j] = vi
		}
	}
	// Shuffle so the build relation arrives in random order, as in the
	// microbenchmarks (the TPC-H Part table is the sorted exception and
	// is generated by internal/tpch instead).
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		keys[i], keys[j] = keys[j], keys[i]
	}
	return keys
}

// probeRelation draws |S| foreign keys referencing the build keys into
// the preallocated probe slice (len c.ProbeSize).
func probeRelation(c Config, buildKeys []tuple.Key, r *rng, probe tuple.Relation) tuple.Relation {
	if c.ProbeSize == 0 {
		return probe
	}
	if c.Zipf == 0 {
		n := len(buildKeys)
		for i := range probe {
			probe[i] = tuple.Tuple{Key: buildKeys[r.intn(n)], Payload: tuple.Payload(i)}
		}
		return probe
	}
	z := NewZipf(r, len(buildKeys), c.Zipf)
	// Appendix A: map the 10 hottest ranks to random keys across the
	// full domain so the most frequent keys do not all land in one radix
	// partition.
	scatter := make([]tuple.Key, 10)
	for i := range scatter {
		scatter[i] = buildKeys[r.intn(len(buildKeys))]
	}
	for i := range probe {
		rank := z.Next()
		var k tuple.Key
		if rank < len(scatter) {
			k = scatter[rank]
		} else {
			k = buildKeys[rank]
		}
		probe[i] = tuple.Tuple{Key: k, Payload: tuple.Payload(i)}
	}
	return probe
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^theta, using the inverted-CDF approximation of Gray et al.
// (“Quickly Generating Billion-Record Synthetic Databases”, SIGMOD 1994),
// which needs O(1) work per draw after O(1) setup.
type Zipf struct {
	r     *rng
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipf prepares a generator over ranks [0, n) with skew theta in
// [0, 1). theta = 0 degenerates to uniform.
func NewZipf(r *rng, n int, theta float64) *Zipf {
	z := &Zipf{r: r, n: n, theta: theta}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zetaStatic computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
// For the relation sizes used here (up to a few hundred million) the sum
// is computed once per generator; the cost is linear but amortized over
// |S| draws.
func zetaStatic(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws one rank; rank 0 is the most frequent.
func (z *Zipf) Next() int {
	u := z.r.float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	rank := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}

// UniformRelation generates n tuples with keys uniform in [0, domain),
// independent of any build side. Used by partitioning microbenchmarks
// that do not need join semantics.
func UniformRelation(n, domain int, seed uint64) tuple.Relation {
	r := newRNG(seed)
	rel := make(tuple.Relation, n)
	for i := range rel {
		rel[i] = tuple.Tuple{Key: tuple.Key(r.intn(domain)), Payload: tuple.Payload(i)}
	}
	return rel
}
