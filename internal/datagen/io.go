package datagen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mmjoin/internal/tuple"
)

// Binary workload format used by cmd/datagen so that expensive workloads
// can be generated once and joined many times:
//
//	magic "MMJW" | version u32 | domain u64 | buildLen u64 | probeLen u64
//	| build tuples (key u32, payload u32)... | probe tuples ...
//
// All integers are little-endian.

const (
	workloadMagic   = "MMJW"
	workloadVersion = 1
)

// WriteWorkload serializes w.
func WriteWorkload(dst io.Writer, w *Workload) error {
	bw := bufio.NewWriterSize(dst, 1<<20)
	if _, err := bw.WriteString(workloadMagic); err != nil {
		return err
	}
	header := make([]byte, 4+8+8+8)
	binary.LittleEndian.PutUint32(header[0:], workloadVersion)
	binary.LittleEndian.PutUint64(header[4:], uint64(w.Domain))
	binary.LittleEndian.PutUint64(header[12:], uint64(len(w.Build)))
	binary.LittleEndian.PutUint64(header[20:], uint64(len(w.Probe)))
	if _, err := bw.Write(header); err != nil {
		return err
	}
	if err := writeRelation(bw, w.Build); err != nil {
		return err
	}
	if err := writeRelation(bw, w.Probe); err != nil {
		return err
	}
	return bw.Flush()
}

func writeRelation(bw *bufio.Writer, rel tuple.Relation) error {
	var buf [8]byte
	for _, tp := range rel {
		binary.LittleEndian.PutUint32(buf[0:], uint32(tp.Key))
		binary.LittleEndian.PutUint32(buf[4:], uint32(tp.Payload))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// ReadWorkload deserializes a workload written by WriteWorkload.
func ReadWorkload(src io.Reader) (*Workload, error) {
	br := bufio.NewReaderSize(src, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("datagen: reading magic: %w", err)
	}
	if string(magic) != workloadMagic {
		return nil, fmt.Errorf("datagen: bad magic %q", magic)
	}
	header := make([]byte, 4+8+8+8)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("datagen: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(header[0:]); v != workloadVersion {
		return nil, fmt.Errorf("datagen: unsupported version %d", v)
	}
	w := &Workload{Domain: int(binary.LittleEndian.Uint64(header[4:]))}
	buildLen := binary.LittleEndian.Uint64(header[12:])
	probeLen := binary.LittleEndian.Uint64(header[20:])
	const maxTuples = 1 << 34
	if buildLen > maxTuples || probeLen > maxTuples {
		return nil, fmt.Errorf("datagen: implausible tuple counts %d/%d", buildLen, probeLen)
	}
	var err error
	if w.Build, err = readRelation(br, int(buildLen)); err != nil {
		return nil, err
	}
	if w.Probe, err = readRelation(br, int(probeLen)); err != nil {
		return nil, err
	}
	return w, nil
}

func readRelation(br *bufio.Reader, n int) (tuple.Relation, error) {
	rel := make(tuple.Relation, n)
	var buf [8]byte
	for i := range rel {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("datagen: truncated relation at tuple %d: %w", i, err)
		}
		rel[i] = tuple.Tuple{
			Key:     tuple.Key(binary.LittleEndian.Uint32(buf[0:])),
			Payload: tuple.Payload(binary.LittleEndian.Uint32(buf[4:])),
		}
	}
	return rel, nil
}
