package datagen

import (
	"math"
	"testing"
	"testing/quick"

	"mmjoin/internal/tuple"
)

func TestGenerateDenseKeysArePermutation(t *testing.T) {
	w, err := Generate(Config{BuildSize: 1000, ProbeSize: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 1000)
	for _, tp := range w.Build {
		if int(tp.Key) >= 1000 {
			t.Fatalf("key %d out of dense domain", tp.Key)
		}
		if seen[tp.Key] {
			t.Fatalf("duplicate key %d", tp.Key)
		}
		seen[tp.Key] = true
	}
}

func TestGenerateBuildPayloadIsRowID(t *testing.T) {
	w, err := Generate(Config{BuildSize: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range w.Build {
		if tp.Payload != tuple.Payload(i) {
			t.Fatalf("payload[%d] = %d", i, tp.Payload)
		}
	}
}

func TestGenerateShuffles(t *testing.T) {
	w, err := Generate(Config{BuildSize: 4096, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	inOrder := 0
	for i, tp := range w.Build {
		if int(tp.Key) == i {
			inOrder++
		}
	}
	if inOrder > 64 {
		t.Fatalf("build relation barely shuffled: %d/4096 fixed points", inOrder)
	}
}

func TestProbeKeysReferenceBuild(t *testing.T) {
	w, err := Generate(Config{BuildSize: 100, ProbeSize: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	valid := make(map[tuple.Key]bool, 100)
	for _, tp := range w.Build {
		valid[tp.Key] = true
	}
	for _, tp := range w.Probe {
		if !valid[tp.Key] {
			t.Fatalf("probe key %d not in build", tp.Key)
		}
	}
}

func TestProbeKeysReferenceBuildWithHolesAndSkew(t *testing.T) {
	w, err := Generate(Config{BuildSize: 100, ProbeSize: 500, Zipf: 0.9, HoleFactor: 7, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	valid := make(map[tuple.Key]bool, 100)
	for _, tp := range w.Build {
		valid[tp.Key] = true
	}
	for _, tp := range w.Probe {
		if !valid[tp.Key] {
			t.Fatalf("probe key %d not in build", tp.Key)
		}
	}
}

func TestHoleFactorDomain(t *testing.T) {
	w, err := Generate(Config{BuildSize: 200, HoleFactor: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if w.Domain != 1000 {
		t.Fatalf("domain = %d, want 1000", w.Domain)
	}
	seen := make(map[tuple.Key]bool)
	outside := false
	for _, tp := range w.Build {
		if seen[tp.Key] {
			t.Fatalf("duplicate key %d in hole workload", tp.Key)
		}
		seen[tp.Key] = true
		if int(tp.Key) >= 1000 {
			t.Fatalf("key %d outside domain 1000", tp.Key)
		}
		if int(tp.Key) >= 200 {
			outside = true
		}
	}
	if !outside {
		t.Fatal("hole workload produced a fully dense prefix; holes missing")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{BuildSize: 500, ProbeSize: 500, Zipf: 0.5, Seed: 42})
	b, _ := Generate(Config{BuildSize: 500, ProbeSize: 500, Zipf: 0.5, Seed: 42})
	for i := range a.Build {
		if a.Build[i] != b.Build[i] {
			t.Fatalf("build diverges at %d", i)
		}
	}
	for i := range a.Probe {
		if a.Probe[i] != b.Probe[i] {
			t.Fatalf("probe diverges at %d", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(Config{BuildSize: 500, Seed: 1})
	b, _ := Generate(Config{BuildSize: 500, Seed: 2})
	same := 0
	for i := range a.Build {
		if a.Build[i].Key == b.Build[i].Key {
			same++
		}
	}
	if same == 500 {
		t.Fatal("different seeds produced identical build relations")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{BuildSize: 0},
		{BuildSize: -1},
		{BuildSize: 10, ProbeSize: -1},
		{BuildSize: 10, Zipf: 1.0},
		{BuildSize: 10, Zipf: -0.1},
		{BuildSize: 1 << 30, HoleFactor: 16},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %+v validated", c)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	r := newRNG(9)
	z := NewZipf(r, 10000, 0.99)
	const draws = 200000
	top10 := 0
	for i := 0; i < draws; i++ {
		if z.Next() < 10 {
			top10++
		}
	}
	frac := float64(top10) / draws
	if frac < 0.30 {
		t.Fatalf("theta=0.99 put only %.2f of mass on top-10 ranks", frac)
	}
	// Uniform comparison: top-10 of 10000 should get ~0.1%.
	uni := 0
	for i := 0; i < draws; i++ {
		if r.intn(10000) < 10 {
			uni++
		}
	}
	if float64(uni)/draws > 0.01 {
		t.Fatalf("uniform control drew %.4f on top-10", float64(uni)/draws)
	}
}

func TestZipfRanksInRange(t *testing.T) {
	r := newRNG(10)
	z := NewZipf(r, 100, 0.5)
	for i := 0; i < 10000; i++ {
		rank := z.Next()
		if rank < 0 || rank >= 100 {
			t.Fatalf("rank %d out of [0,100)", rank)
		}
	}
}

func TestZipfMonotoneFrequency(t *testing.T) {
	r := newRNG(11)
	z := NewZipf(r, 50, 0.9)
	counts := make([]int, 50)
	for i := 0; i < 500000; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 10 must dominate rank 40, with slack for
	// sampling noise.
	if !(counts[0] > counts[10] && counts[10] > counts[40]) {
		t.Fatalf("frequencies not decreasing: c0=%d c10=%d c40=%d", counts[0], counts[10], counts[40])
	}
}

func TestZetaStatic(t *testing.T) {
	// theta=0: zeta(n, 0) = n.
	if got := zetaStatic(10, 0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("zeta(10,0) = %g", got)
	}
	// Harmonic number H_3 = 1 + 1/2 + 1/3.
	if got := zetaStatic(3, 1.0); math.Abs(got-(1+0.5+1.0/3)) > 1e-9 {
		t.Fatalf("zeta(3,1) = %g", got)
	}
}

func TestUniformRelationDomain(t *testing.T) {
	rel := UniformRelation(5000, 37, 3)
	seen := make(map[tuple.Key]int)
	for _, tp := range rel {
		if int(tp.Key) >= 37 {
			t.Fatalf("key %d out of domain", tp.Key)
		}
		seen[tp.Key]++
	}
	if len(seen) != 37 {
		t.Fatalf("only %d/37 keys drawn over 5000 tuples", len(seen))
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := newRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hole-domain build keys are always distinct, for arbitrary
// sizes and hole factors.
func TestBuildKeysDistinctProperty(t *testing.T) {
	f := func(nRaw, kRaw, seed uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw%6) + 1
		w, err := Generate(Config{BuildSize: n, HoleFactor: k, Seed: uint64(seed)})
		if err != nil {
			return false
		}
		seen := make(map[tuple.Key]bool, n)
		for _, tp := range w.Build {
			if seen[tp.Key] || int(tp.Key) >= n*k {
				return false
			}
			seen[tp.Key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
