// Package memsim is a trace-driven simulator of the memory hierarchy of
// the paper's evaluation machine (Intel Xeon E7-4870 v2, Section 7.1):
// set-associative L1d/L2 caches, a shared L3, and a TLB whose entry
// count depends on the page size — 256 entries with 4 KB pages but only
// 32 with 2 MB pages, the asymmetry behind Figure 8.
//
// The container this reproduction runs on cannot change its page size or
// expose hardware counters, so the page-size experiment (Figure 8), the
// cache-miss counters (Table 4) and the TLB arithmetic of the SWWCB
// analysis are replayed here: instrumented twins of the partitioning and
// build/probe kernels (see kernels.go) issue the same address streams as
// the real code in internal/radix and internal/join, and the simulator
// counts hits, misses and page walks.
package memsim

import (
	"fmt"

	"mmjoin/internal/offheap"
)

// Geometry describes one simulated memory hierarchy.
type Geometry struct {
	L1  CacheConfig
	L2  CacheConfig
	L3  CacheConfig
	TLB TLBConfig
	// PageBytes is the virtual-memory page size (4 KB or 2 MB in the
	// paper's experiments).
	PageBytes int64
	// Penalties in cycles, used by ModeledNanos.
	L1HitCycles   float64
	L2HitCycles   float64
	L3HitCycles   float64
	MemoryCycles  float64
	TLBMissCycles float64
	GHz           float64
}

// CacheConfig is the shape of one cache level.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// TLBConfig is the shape of the TLB for a given page size.
type TLBConfig struct {
	Entries int
}

// PaperGeometry returns the evaluation machine's hierarchy for the given
// page size: 32 KB/8-way L1d, 256 KB/8-way L2, 30 MB/20-way shared L3,
// and 256 (4 KB) or 32 (2 MB) TLB entries.
func PaperGeometry(pageBytes int64) Geometry {
	g := Geometry{
		L1:            CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		L2:            CacheConfig{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8},
		L3:            CacheConfig{SizeBytes: 30 << 20, LineBytes: 64, Ways: 20},
		PageBytes:     pageBytes,
		L1HitCycles:   4,
		L2HitCycles:   12,
		L3HitCycles:   40,
		MemoryCycles:  200,
		TLBMissCycles: 35,
		GHz:           2.3,
	}
	g.TLB = TLBFor(pageBytes)
	return g
}

// HostGeometry returns PaperGeometry at the page size the off-heap
// allocator actually steers toward on this host: 2 MB when huge pages
// (MAP_HUGETLB or transparent-huge-page advice) are in play, the OS base
// page otherwise. It ties the Figure 8 TLB model to the allocator that
// backs -offheap runs instead of to a hand-picked page size.
func HostGeometry() Geometry {
	return PaperGeometry(int64(offheap.PreferredPageBytes()))
}

// ScaledGeometry shrinks all cache levels by factor (power of two) so
// that cache-residency crossovers can be studied with small simulated
// inputs in reasonable time; the TLB is left at the real entry counts
// because the page-size effects are about entry counts, not capacity
// ratios.
func ScaledGeometry(pageBytes int64, factor int) Geometry {
	g := PaperGeometry(pageBytes)
	if factor > 1 {
		g.L1.SizeBytes /= factor
		if g.L1.SizeBytes < g.L1.LineBytes*g.L1.Ways {
			g.L1.SizeBytes = g.L1.LineBytes * g.L1.Ways
		}
		g.L2.SizeBytes /= factor
		g.L3.SizeBytes /= factor
	}
	return g
}

// TLBFor returns the paper's TLB shape for a page size: 256 entries for
// 4 KB pages, 32 entries for 2 MB pages (Section 7.1).
func TLBFor(pageBytes int64) TLBConfig {
	if pageBytes >= 2<<20 {
		return TLBConfig{Entries: 32}
	}
	return TLBConfig{Entries: 256}
}

// Stats are the counters of one simulation run (Table 4's columns).
type Stats struct {
	Accesses  int64
	L1Hits    int64
	L2Hits    int64
	L2Misses  int64
	L3Hits    int64
	L3Misses  int64
	TLBHits   int64
	TLBMisses int64
	NTStores  int64
	// Instructions counts retired instructions as estimated by the
	// instrumented kernels (Table 4's "IR" column); see AddInstructions.
	Instructions int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.L1Hits += other.L1Hits
	s.L2Hits += other.L2Hits
	s.L2Misses += other.L2Misses
	s.L3Hits += other.L3Hits
	s.L3Misses += other.L3Misses
	s.TLBHits += other.TLBHits
	s.TLBMisses += other.TLBMisses
	s.NTStores += other.NTStores
	s.Instructions += other.Instructions
}

// IPC is instructions per cycle under the geometry's latency model —
// Table 4's rightmost column per phase. Memory-bound phases land well
// below 1; cache-resident probe loops exceed it.
func (s *Stats) IPC(g Geometry) float64 {
	ns := g.ModeledNanos(*s)
	cycles := ns * g.GHz
	if cycles <= 0 {
		return 0
	}
	return float64(s.Instructions) / cycles
}

// L2HitRate is hits/(hits+misses) at L2 — Table 4's "L2 Hit Rate".
func (s *Stats) L2HitRate() float64 { return rate(s.L2Hits, s.L2Misses) }

// L3HitRate is hits/(hits+misses) at L3.
func (s *Stats) L3HitRate() float64 { return rate(s.L3Hits, s.L3Misses) }

func rate(hit, miss int64) float64 {
	if hit+miss == 0 {
		return 0
	}
	return float64(hit) / float64(hit+miss)
}

func (s *Stats) String() string {
	return fmt.Sprintf("acc=%d L2miss=%d L3miss=%d (hit rates %.2f/%.2f) TLBmiss=%d",
		s.Accesses, s.L2Misses, s.L3Misses, s.L2HitRate(), s.L3HitRate(), s.TLBMisses)
}

// cache is one set-associative LRU cache level.
type cache struct {
	ways     int
	sets     int
	lineBits uint
	tags     []uint64 // sets*ways; 0 means invalid, stored tag+1
	stamp    []uint64 // LRU clocks
	clock    uint64
}

func newCache(cfg CacheConfig) *cache {
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	sets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	// Sets must be a power of two for mask indexing.
	p := 1
	for p < sets {
		p <<= 1
	}
	if p != sets {
		sets = p / 2
		if sets < 1 {
			sets = 1
		}
	}
	return &cache{
		ways:     cfg.Ways,
		sets:     sets,
		lineBits: lineBits,
		tags:     make([]uint64, sets*cfg.Ways),
		stamp:    make([]uint64, sets*cfg.Ways),
	}
}

// access looks up the line containing addr; on miss the line is
// installed, evicting the LRU way. Returns whether it was a hit.
func (c *cache) access(line uint64) bool {
	set := int(line) & (c.sets - 1)
	base := set * c.ways
	tag := line + 1
	c.clock++
	lruIdx, lruStamp := base, c.stamp[base]
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tag {
			c.stamp[i] = c.clock
			return true
		}
		if c.stamp[i] < lruStamp {
			lruIdx, lruStamp = i, c.stamp[i]
		}
	}
	c.tags[lruIdx] = tag
	c.stamp[lruIdx] = c.clock
	return false
}

// tlb is a fully associative LRU TLB. Hardware TLBs are set-associative,
// but the paper's arguments (128 partitions vs 256 or 32 entries) are
// about capacity, which full associativity models cleanly.
type tlb struct {
	entries []uint64
	stamp   []uint64
	clock   uint64
}

func newTLB(cfg TLBConfig) *tlb {
	return &tlb{entries: make([]uint64, cfg.Entries), stamp: make([]uint64, cfg.Entries)}
}

func (t *tlb) access(page uint64) bool {
	key := page + 1
	t.clock++
	lruIdx, lruStamp := 0, t.stamp[0]
	for i := range t.entries {
		if t.entries[i] == key {
			t.stamp[i] = t.clock
			return true
		}
		if t.stamp[i] < lruStamp {
			lruIdx, lruStamp = i, t.stamp[i]
		}
	}
	t.entries[lruIdx] = key
	t.stamp[lruIdx] = t.clock
	return false
}

// Hierarchy is one core's view of the memory system.
type Hierarchy struct {
	geo   Geometry
	l1    *cache
	l2    *cache
	l3    *cache
	tlb   *tlb
	stats Stats
}

// NewHierarchy builds a hierarchy for the geometry.
func NewHierarchy(geo Geometry) *Hierarchy {
	return &Hierarchy{
		geo: geo,
		l1:  newCache(geo.L1),
		l2:  newCache(geo.L2),
		l3:  newCache(geo.L3),
		tlb: newTLB(geo.TLB),
	}
}

// Access simulates one load or store of up to one cache line at addr.
func (h *Hierarchy) Access(addr uint64, write bool) {
	_ = write // write-allocate: loads and stores walk the same path
	h.stats.Accesses++
	if h.tlb.access(addr / uint64(h.geo.PageBytes)) {
		h.stats.TLBHits++
	} else {
		h.stats.TLBMisses++
	}
	line := addr >> h.l1.lineBits
	if h.l1.access(line) {
		h.stats.L1Hits++
		return
	}
	if h.l2.access(line) {
		h.stats.L2Hits++
		return
	}
	h.stats.L2Misses++
	if h.l3.access(line) {
		h.stats.L3Hits++
		return
	}
	h.stats.L3Misses++
}

// NTStore simulates a non-temporal streaming store of one cache line:
// it needs an address translation but bypasses all cache levels — the
// behaviour SWWCB flushes rely on to avoid polluting the caches.
func (h *Hierarchy) NTStore(addr uint64) {
	h.stats.Accesses++
	h.stats.NTStores++
	if h.tlb.access(addr / uint64(h.geo.PageBytes)) {
		h.stats.TLBHits++
	} else {
		h.stats.TLBMisses++
	}
}

// AddInstructions records n retired instructions in the current phase.
// The kernels charge per-tuple instruction estimates calibrated against
// the instruction mixes of the original C implementations (a histogram
// update is a handful of instructions, a hash probe a dozen, a sort
// comparator a few).
func (h *Hierarchy) AddInstructions(n int64) { h.stats.Instructions += n }

// Stats returns the counters accumulated so far.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats clears the counters but keeps cache contents warm.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

// TakeStats returns counters accumulated since the last call and resets
// them — the per-phase split of Table 4.
func (h *Hierarchy) TakeStats() Stats {
	s := h.stats
	h.stats = Stats{}
	return s
}

// ModeledNanos converts counters into a modeled runtime with the
// geometry's latency weights. Absolute values are indicative only; the
// harness compares them across configurations, never against wall-clock.
func (g Geometry) ModeledNanos(s Stats) float64 {
	cycles := float64(s.L1Hits)*g.L1HitCycles +
		float64(s.L2Hits)*g.L2HitCycles +
		float64(s.L3Hits)*g.L3HitCycles +
		float64(s.L3Misses)*g.MemoryCycles +
		float64(s.NTStores)*g.L1HitCycles + // buffered line flush
		float64(s.TLBMisses)*g.TLBMissCycles
	return cycles / g.GHz
}
