package memsim

import (
	"fmt"

	"mmjoin/internal/hashtable"
	"mmjoin/internal/radix"
	"mmjoin/internal/tuple"
)

// This file contains instrumented twins of the join kernels: they follow
// the same control flow as internal/radix and internal/join over the
// same data, but instead of moving tuples they issue the address stream
// into a simulated Hierarchy. Structure layouts (8-byte tuples, 64-byte
// SWWCBs, 32-byte chained buckets, 8-byte linear slots, 4-byte array
// cells) mirror the real implementations.

// space is a bump allocator for the simulated virtual address space.
// Allocations are page-aligned so that structures do not share TLB
// entries accidentally.
type space struct{ next uint64 }

func (s *space) alloc(bytes int64, pageBytes int64) uint64 {
	base := s.next
	s.next += uint64((bytes + pageBytes - 1) / pageBytes * pageBytes)
	if s.next == base {
		s.next += uint64(pageBytes)
	}
	return base
}

// PhaseStats is the per-phase counter split reported in Table 4.
type PhaseStats struct {
	Algorithm string
	// Partition covers the "Sort or Build or Partition Phase" column
	// group; Join covers "Probe or Join Phase".
	Partition Stats
	Join      Stats
}

// ModeledTotalNanos is the modeled runtime of both phases.
func (p *PhaseStats) ModeledTotalNanos(g Geometry) float64 {
	return g.ModeledNanos(p.Partition) + g.ModeledNanos(p.Join)
}

// simHistogram replays one histogram pass: sequential input reads plus
// one histogram-cell access per tuple.
func simHistogram(h *Hierarchy, keys tuple.Relation, inBase, histBase uint64, bits uint) {
	mask := tuple.Key(1<<bits - 1)
	h.AddInstructions(int64(len(keys)) * 6) // load, mask, increment, loop
	for i, tp := range keys {
		h.Access(inBase+uint64(i)*tuple.Bytes, false)
		h.Access(histBase+uint64(tp.Key&mask)*8, false)
	}
}

// simScatterDirect replays the unbuffered scatter of PRB: sequential
// input reads, a cursor access and a random output write per tuple.
func simScatterDirect(h *Hierarchy, keys tuple.Relation, inBase, outBase, curBase uint64, bits uint, cursors []int64) {
	mask := tuple.Key(1<<bits - 1)
	h.AddInstructions(int64(len(keys)) * 10) // load, mask, cursor load/store, tuple store, loop
	for i, tp := range keys {
		h.Access(inBase+uint64(i)*tuple.Bytes, false)
		p := tp.Key & mask
		h.Access(curBase+uint64(p)*8, true)
		h.Access(outBase+uint64(cursors[p])*tuple.Bytes, true)
		cursors[p]++
	}
}

// simScatterSWWCB replays the buffered scatter of PRO: tuple writes land
// in the per-partition cache-line buffer; full buffers are flushed with
// one non-temporal line store.
func simScatterSWWCB(h *Hierarchy, keys tuple.Relation, inBase, outBase, bufBase uint64, bits uint, cursors []int64) {
	mask := tuple.Key(1<<bits - 1)
	h.AddInstructions(int64(len(keys)) * 13) // buffer write, fill bookkeeping, flush check
	fill := make([]int, 1<<bits)
	for i, tp := range keys {
		h.Access(inBase+uint64(i)*tuple.Bytes, false)
		p := tp.Key & mask
		h.Access(bufBase+uint64(p)*tuple.CacheLineBytes+uint64(fill[p])*tuple.Bytes, true)
		fill[p]++
		if fill[p] == tuple.TuplesPerCacheLine {
			h.NTStore(outBase + uint64(cursors[p])*tuple.Bytes)
			cursors[p] += tuple.TuplesPerCacheLine
			fill[p] = 0
		}
	}
	for p := range fill {
		if fill[p] > 0 {
			h.NTStore(outBase + uint64(cursors[p])*tuple.Bytes)
		}
	}
}

// simPartitionPass simulates one complete partitioning pass (histogram +
// scatter) and returns the base address of the partition output.
func simPartitionPass(h *Hierarchy, sp *space, keys tuple.Relation, bits uint, swwcb bool, pageBytes int64) uint64 {
	parts := int64(1) << bits
	inBase := sp.alloc(int64(len(keys))*tuple.Bytes, pageBytes)
	outBase := sp.alloc(int64(len(keys))*tuple.Bytes, pageBytes)
	histBase := sp.alloc(parts*8, pageBytes)
	hist := radix.Histogram(keys, bits)
	cursors := make([]int64, parts)
	pos := int64(0)
	for p, c := range hist {
		cursors[p] = pos
		pos += int64(c)
	}
	simHistogram(h, keys, inBase, histBase, bits)
	if swwcb {
		bufBase := sp.alloc(parts*tuple.CacheLineBytes, pageBytes)
		simScatterSWWCB(h, keys, inBase, outBase, bufBase, bits, cursors)
	} else {
		simScatterDirect(h, keys, inBase, outBase, histBase, bits, cursors)
	}
	return outBase
}

// tableLayout describes the simulated per-partition join table of one
// table kind.
type tableLayout struct {
	kind       string // "chained", "linear", "array", "cht"
	entryBytes uint64
	slots      func(buildLen int) uint64
	slotOf     func(k tuple.Key, buildLen int, bits uint) uint64
}

func layoutFor(kind string, domain int) tableLayout {
	switch kind {
	case "chained":
		// 32-byte buckets, ~1 tuple-pair per bucket.
		return tableLayout{
			kind:       kind,
			entryBytes: 32,
			slots:      func(n int) uint64 { return uint64(hashtable.NextPow2((n + 1) / 2)) },
			slotOf: func(k tuple.Key, n int, bits uint) uint64 {
				return uint64(k>>bits) & (uint64(hashtable.NextPow2((n+1)/2)) - 1)
			},
		}
	case "linear":
		// 8-byte slots at 50% load.
		return tableLayout{
			kind:       kind,
			entryBytes: 8,
			slots:      func(n int) uint64 { return uint64(hashtable.NextPow2(n*2 + 1)) },
			slotOf: func(k tuple.Key, n int, bits uint) uint64 {
				return uint64(k>>bits) & (uint64(hashtable.NextPow2(n*2+1)) - 1)
			},
		}
	default: // array
		return tableLayout{
			kind:       kind,
			entryBytes: 4,
			slots: func(n int) uint64 {
				_ = n
				return uint64(domain) + 1
			},
			slotOf: func(k tuple.Key, n int, bits uint) uint64 {
				return uint64(k >> bits)
			},
		}
	}
}

// simCoPartitionJoin replays the join phase of a PR*/CPR* join: for each
// co-partition, build a per-worker table (reused base address — the
// worker keeps its table hot) and probe it.
func simCoPartitionJoin(h *Hierarchy, sp *space, pr, ps *radix.Partitioned, kind string, bits uint, domain int, pageBytes int64) {
	lay := layoutFor(kind, (domain>>bits)+1)
	// One reused table allocation, like workerState in internal/join.
	maxPart := 0
	for p := 0; p < pr.Parts(); p++ {
		if pr.PartLen(p) > maxPart {
			maxPart = pr.PartLen(p)
		}
	}
	tblBase := sp.alloc(int64(lay.slots(maxPart)*lay.entryBytes), pageBytes)
	rBase := sp.alloc(int64(len(pr.Data))*tuple.Bytes, pageBytes)
	sBase := sp.alloc(int64(len(ps.Data))*tuple.Bytes, pageBytes)
	buildInstr, probeInstr := tableInstrCost(kind)
	for p := 0; p < pr.Parts(); p++ {
		bpart := pr.Part(p)
		if len(bpart) == 0 {
			continue
		}
		h.AddInstructions(int64(len(bpart)) * buildInstr)
		h.AddInstructions(int64(ps.PartLen(p)) * probeInstr)
		for i, tp := range bpart {
			h.Access(rBase+uint64(pr.Start(p)+i)*tuple.Bytes, false)
			h.Access(tblBase+lay.slotOf(tp.Key, len(bpart), bits)*lay.entryBytes, true)
		}
		spart := ps.Part(p)
		for i, tp := range spart {
			h.Access(sBase+uint64(ps.Start(p)+i)*tuple.Bytes, false)
			h.Access(tblBase+lay.slotOf(tp.Key, len(bpart), bits)*lay.entryBytes, false)
		}
	}
}

// tableInstrCost estimates retired instructions per build and probe
// tuple for a table kind, following the instruction mixes of the
// original implementations (chained buckets branch more; arrays are a
// shift and a bounds check).
func tableInstrCost(kind string) (build, probe int64) {
	switch kind {
	case "chained":
		return 16, 15
	case "linear":
		return 13, 11
	case "cht":
		return 14, 20 // probe: bitmap test + popcount + array compare
	default: // array
		return 9, 8
	}
}

// simGlobalTableJoin replays the NOP-family: one global table, random
// accesses per build and probe tuple. perProbe controls dependent
// accesses per probe (2 for CHTJ's bitmap + array walk).
func simGlobalTableJoin(h *Hierarchy, sp *space, build, probe tuple.Relation, kind string, domain int, pageBytes int64) (buildStats, probeStats Stats) {
	lay := layoutFor(kind, domain)
	slots := lay.slots(len(build))
	tblBase := sp.alloc(int64(slots*lay.entryBytes), pageBytes)
	bBase := sp.alloc(int64(len(build))*tuple.Bytes, pageBytes)
	pBase := sp.alloc(int64(len(probe))*tuple.Bytes, pageBytes)
	var arrayBase uint64
	if kind == "cht" {
		// Dense tuple array next to the bitmap structure.
		arrayBase = sp.alloc(int64(len(build))*tuple.Bytes, pageBytes)
	}
	h.ResetStats()
	buildInstr, probeInstr := tableInstrCost(kind)
	// NOP builds pay the CAS on top of the plain insert.
	h.AddInstructions(int64(len(build)) * (buildInstr + 5))
	for i, tp := range build {
		h.Access(bBase+uint64(i)*tuple.Bytes, false)
		h.Access(tblBase+lay.slotOf(tp.Key, len(build), 0)*lay.entryBytes, true)
		if kind == "cht" {
			h.Access(arrayBase+(uint64(tp.Key)%uint64(len(build)+1))*tuple.Bytes, true)
		}
	}
	buildStats = h.TakeStats()
	h.AddInstructions(int64(len(probe)) * probeInstr)
	for i, tp := range probe {
		h.Access(pBase+uint64(i)*tuple.Bytes, false)
		h.Access(tblBase+lay.slotOf(tp.Key, len(build), 0)*lay.entryBytes, false)
		if kind == "cht" {
			h.Access(arrayBase+(uint64(tp.Key)%uint64(len(build)+1))*tuple.Bytes, false)
		}
	}
	probeStats = h.TakeStats()
	return buildStats, probeStats
}

// chtLayout gives CHTJ its bitmap-group addressing: 8 bytes per 32
// buckets over an 8n-bucket bitmap.
func chtSlotOf(k tuple.Key, n int) uint64 {
	buckets := uint64(hashtable.NextPow2(n)) * 8
	bucket := (uint64(k) * 8) & (buckets - 1)
	return bucket >> 5 // group index
}

// Simulate replays one algorithm over the workload at the given radix
// bits and returns the per-phase counters. Supported names are the
// Table 2 abbreviations. The simulation runs the access stream of one
// core; multi-threaded totals scale linearly with thread count for
// every stream except the shared L3, which the scaled geometry
// compensates for (see EXPERIMENTS.md). The CPR* join phase reuses the
// contiguous-partition layout: per-fragment gathers are sequential runs
// with identical cache behaviour, and their NUMA cost is the domain of
// internal/numasim, not this simulator.
func Simulate(name string, build, probe tuple.Relation, bits uint, geo Geometry) (*PhaseStats, error) {
	h := NewHierarchy(geo)
	sp := &space{next: uint64(geo.PageBytes)}
	ps := &PhaseStats{Algorithm: name}
	domain := 0
	for _, tp := range build {
		if int(tp.Key) >= domain {
			domain = int(tp.Key) + 1
		}
	}
	switch name {
	case "NOP":
		ps.Partition, ps.Join = simGlobalTableJoin(h, sp, build, probe, "linear", domain, geo.PageBytes)
	case "NOPA":
		ps.Partition, ps.Join = simGlobalTableJoin(h, sp, build, probe, "array", domain, geo.PageBytes)
	case "CHTJ":
		ps.Partition, ps.Join = simCHTJ(h, sp, build, probe, geo.PageBytes)
	case "MWAY":
		simMWAY(h, sp, build, probe, geo.PageBytes)
		ps.Partition = h.TakeStats()
		// Merge join: one sequential pass over both sorted inputs.
		simSequentialPass(h, sp, int64(len(build)+len(probe))*tuple.Bytes, false, geo.PageBytes)
		ps.Join = h.TakeStats()
	case "PRB", "PRO", "PRL", "PRA", "PROiS", "PRLiS", "PRAiS", "CPRL", "CPRA":
		kind := "chained"
		switch name {
		case "PRL", "PRLiS", "CPRL":
			kind = "linear"
		case "PRA", "PRAiS", "CPRA":
			kind = "array"
		}
		swwcb := name != "PRB"
		if name == "PRB" {
			b1 := bits / 2
			b2 := bits - b1
			simPartitionPass(h, sp, build, b1, false, geo.PageBytes)
			simPartitionPass(h, sp, build, b2, false, geo.PageBytes)
			simPartitionPass(h, sp, probe, b1, false, geo.PageBytes)
			simPartitionPass(h, sp, probe, b2, false, geo.PageBytes)
		} else {
			simPartitionPass(h, sp, build, bits, swwcb, geo.PageBytes)
			simPartitionPass(h, sp, probe, bits, swwcb, geo.PageBytes)
		}
		ps.Partition = h.TakeStats()
		pr := radix.PartitionGlobal(build, bits, 1, false)
		psPart := radix.PartitionGlobal(probe, bits, 1, false)
		simCoPartitionJoin(h, sp, pr, psPart, kind, bits, domain, geo.PageBytes)
		ps.Join = h.TakeStats()
	default:
		return nil, fmt.Errorf("memsim: unknown algorithm %q", name)
	}
	return ps, nil
}

// simCHTJ replays CHTJ: a build pass writing bitmap groups and the dense
// array, then probes doing the two dependent accesses of Table 4.
func simCHTJ(h *Hierarchy, sp *space, build, probe tuple.Relation, pageBytes int64) (Stats, Stats) {
	n := len(build)
	groups := int64(hashtable.NextPow2(max(n, 4))) * 8 / 32
	grpBase := sp.alloc(groups*8, pageBytes)
	arrBase := sp.alloc(int64(n)*tuple.Bytes, pageBytes)
	bBase := sp.alloc(int64(n)*tuple.Bytes, pageBytes)
	pBase := sp.alloc(int64(len(probe))*tuple.Bytes, pageBytes)
	h.ResetStats()
	h.AddInstructions(int64(n) * 14)
	for i, tp := range build {
		h.Access(bBase+uint64(i)*tuple.Bytes, false)
		h.Access(grpBase+chtSlotOf(tp.Key, n)*8, true)
		h.Access(arrBase+uint64(i)*tuple.Bytes, true)
	}
	buildStats := h.TakeStats()
	h.AddInstructions(int64(len(probe)) * 20)
	for i, tp := range probe {
		h.Access(pBase+uint64(i)*tuple.Bytes, false)
		h.Access(grpBase+chtSlotOf(tp.Key, n)*8, false)
		h.Access(arrBase+(uint64(tp.Key)%uint64(max(n, 1)))*tuple.Bytes, false)
	}
	return buildStats, h.TakeStats()
}

// simMWAY replays MWAY's phase 1: SWWCB range partitioning of both
// inputs plus two read+write merge passes per input.
func simMWAY(h *Hierarchy, sp *space, build, probe tuple.Relation, pageBytes int64) {
	const partBits = 5 // 32 "threads"
	simPartitionPass(h, sp, build, partBits, true, pageBytes)
	simPartitionPass(h, sp, probe, partBits, true, pageBytes)
	for pass := 0; pass < 2; pass++ {
		simSequentialPass(h, sp, int64(len(build))*tuple.Bytes, true, pageBytes)
		simSequentialPass(h, sp, int64(len(probe))*tuple.Bytes, true, pageBytes)
	}
}

// simSequentialPass streams size bytes (read, optionally writing the
// same volume to a second buffer, as a merge pass does).
func simSequentialPass(h *Hierarchy, sp *space, size int64, write bool, pageBytes int64) {
	// Sorting and merging cost ~15 instructions per 8-byte tuple.
	h.AddInstructions(size / 8 * 15)
	base := sp.alloc(size, pageBytes)
	var wbase uint64
	if write {
		wbase = sp.alloc(size, pageBytes)
	}
	for off := int64(0); off < size; off += tuple.CacheLineBytes {
		h.Access(base+uint64(off), false)
		if write {
			h.Access(wbase+uint64(off), true)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
