package memsim

import (
	"testing"

	"mmjoin/internal/radix"
	"mmjoin/internal/tuple"
)

// Kernel-level invariants: the instrumented twins must issue exactly the
// access volumes the real algorithms' structure implies.

func seqTuples(n int) tuple.Relation {
	rel := make(tuple.Relation, n)
	for i := range rel {
		rel[i] = tuple.Tuple{Key: tuple.Key(i * 7 % n), Payload: tuple.Payload(i)}
	}
	return rel
}

func TestSimHistogramAccessCount(t *testing.T) {
	geo := PaperGeometry(4 << 10)
	h := NewHierarchy(geo)
	rel := seqTuples(1000)
	simHistogram(h, rel, 0, 1<<20, 4)
	// Two accesses per tuple: the input read and the histogram cell.
	if got := h.Stats().Accesses; got != 2000 {
		t.Fatalf("histogram accesses = %d, want 2000", got)
	}
}

func TestSimScatterDirectAccessCount(t *testing.T) {
	geo := PaperGeometry(4 << 10)
	h := NewHierarchy(geo)
	rel := seqTuples(1000)
	cursors := make([]int64, 16)
	hist := radix.Histogram(rel, 4)
	pos := int64(0)
	for p, c := range hist {
		cursors[p] = pos
		pos += int64(c)
	}
	simScatterDirect(h, rel, 0, 1<<20, 1<<22, 4, cursors)
	// Three accesses per tuple: input read, cursor update, output write.
	if got := h.Stats().Accesses; got != 3000 {
		t.Fatalf("direct scatter accesses = %d, want 3000", got)
	}
}

func TestSimScatterSWWCBFlushCount(t *testing.T) {
	geo := PaperGeometry(4 << 10)
	h := NewHierarchy(geo)
	const n = 1024
	rel := seqTuples(n)
	const bits = 3
	cursors := make([]int64, 1<<bits)
	hist := radix.Histogram(rel, bits)
	pos := int64(0)
	for p, c := range hist {
		cursors[p] = pos
		pos += int64(c)
	}
	simScatterSWWCB(h, rel, 0, 1<<20, 1<<22, bits, cursors)
	s := h.Stats()
	// One NT store per full cache line plus at most one partial flush
	// per partition.
	minFlushes := int64(n / tuple.TuplesPerCacheLine)
	maxFlushes := minFlushes + int64(1<<bits)
	if s.NTStores < minFlushes || s.NTStores > maxFlushes {
		t.Fatalf("NT stores = %d, want in [%d,%d]", s.NTStores, minFlushes, maxFlushes)
	}
	// Buffer writes: one per tuple (plus input reads).
	if s.Accesses < 2*n {
		t.Fatalf("accesses = %d, want >= %d", s.Accesses, 2*n)
	}
}

func TestSimulatePhasesConsistent(t *testing.T) {
	// The two-pass PRB simulation must issue roughly twice the
	// partition-phase accesses of the one-pass PRO simulation.
	build, probe := seqTuples(1<<14), seqTuples(1<<15)
	geo := ScaledGeometry(4<<10, 16)
	pro, err := Simulate("PRO", build, probe, 8, geo)
	if err != nil {
		t.Fatal(err)
	}
	prb, err := Simulate("PRB", build, probe, 8, geo)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(prb.Partition.Accesses) / float64(pro.Partition.Accesses)
	if ratio < 1.5 || ratio > 2.6 {
		t.Fatalf("PRB/PRO partition access ratio = %.2f, want ~2", ratio)
	}
}

func TestSimulateJoinPhaseTouchesAllTuples(t *testing.T) {
	build, probe := seqTuples(1<<12), seqTuples(1<<13)
	geo := ScaledGeometry(4<<10, 16)
	res, err := Simulate("PRL", build, probe, 6, geo)
	if err != nil {
		t.Fatal(err)
	}
	// Join phase: >= 2 accesses per build tuple (read + table write) and
	// >= 2 per probe tuple (read + table probe).
	min := int64(2*len(build) + 2*len(probe))
	if res.Join.Accesses < min {
		t.Fatalf("join accesses = %d, want >= %d", res.Join.Accesses, min)
	}
}

func TestCHTSlotWithinGroups(t *testing.T) {
	n := 1000
	groups := int64(hashtable2Pow(n)) * 8 / 32
	for k := 0; k < n; k++ {
		g := chtSlotOf(tuple.Key(k), n)
		if int64(g) >= groups {
			t.Fatalf("key %d maps to group %d of %d", k, g, groups)
		}
	}
}

// hashtable2Pow mirrors hashtable.NextPow2 for the test without the
// import.
func hashtable2Pow(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func TestScaledGeometryFloors(t *testing.T) {
	g := ScaledGeometry(4<<10, 1<<20)
	if g.L1.SizeBytes < g.L1.LineBytes*g.L1.Ways {
		t.Fatal("L1 scaled below one set")
	}
	if g.TLB.Entries != 256 {
		t.Fatal("scaling must not change TLB entries")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	build, probe := seqTuples(1<<12), seqTuples(1<<12)
	geo := ScaledGeometry(4<<10, 16)
	a, _ := Simulate("CPRA", build, probe, 5, geo)
	b, _ := Simulate("CPRA", build, probe, 5, geo)
	if *a != *b {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestIPCShapeMatchesTable4(t *testing.T) {
	// Table 4: the partition-based joins reach a far higher join-phase
	// IPC (cache-resident tables) than NOP (every probe is a DRAM miss).
	build, probe := seqTuples(1<<15), seqTuples(1<<16)
	geo := ScaledGeometry(2<<20, 64)
	nop, err := Simulate("NOP", build, probe, 0, geo)
	if err != nil {
		t.Fatal(err)
	}
	cprl, err := Simulate("CPRL", build, probe, 8, geo)
	if err != nil {
		t.Fatal(err)
	}
	if cprl.Join.IPC(geo) <= nop.Join.IPC(geo) {
		t.Fatalf("CPRL join IPC %.2f not above NOP %.2f",
			cprl.Join.IPC(geo), nop.Join.IPC(geo))
	}
	if nop.Join.IPC(geo) >= 1 {
		t.Fatalf("NOP join IPC %.2f should be well below 1", nop.Join.IPC(geo))
	}
	if nop.Join.Instructions == 0 || cprl.Partition.Instructions == 0 {
		t.Fatal("instruction counters not populated")
	}
}
