package memsim

import (
	"testing"

	"mmjoin/internal/datagen"
	"mmjoin/internal/tuple"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := newCache(CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if c.access(5) {
		t.Fatal("cold access hit")
	}
	if !c.access(5) {
		t.Fatal("warm access missed")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 1 set: lines mapping to the same set evict LRU.
	c := newCache(CacheConfig{SizeBytes: 128, LineBytes: 64, Ways: 2})
	if c.sets != 1 {
		t.Fatalf("sets = %d, want 1", c.sets)
	}
	c.access(1)
	c.access(2)
	c.access(1) // 1 is now MRU
	if c.access(3) {
		t.Fatal("line 3 should miss")
	}
	// 2 was LRU and must be evicted; 1 must survive.
	if !c.access(1) {
		t.Fatal("line 1 evicted despite being MRU")
	}
	if c.access(2) {
		t.Fatal("line 2 should have been evicted")
	}
}

func TestCacheSetIndexing(t *testing.T) {
	// Lines in different sets do not evict each other.
	c := newCache(CacheConfig{SizeBytes: 4096, LineBytes: 64, Ways: 1})
	for line := uint64(0); line < uint64(c.sets); line++ {
		c.access(line)
	}
	for line := uint64(0); line < uint64(c.sets); line++ {
		if !c.access(line) {
			t.Fatalf("line %d evicted across sets", line)
		}
	}
}

func TestTLBCapacity(t *testing.T) {
	tl := newTLB(TLBConfig{Entries: 4})
	for p := uint64(0); p < 4; p++ {
		tl.access(p)
	}
	for p := uint64(0); p < 4; p++ {
		if !tl.access(p) {
			t.Fatalf("page %d evicted within capacity", p)
		}
	}
	tl.access(99)
	hits := 0
	for p := uint64(0); p < 4; p++ {
		if tl.access(p) {
			hits++
		}
	}
	if hits == 4 {
		t.Fatal("TLB held 5 pages in 4 entries")
	}
}

func TestHierarchySequentialStream(t *testing.T) {
	geo := PaperGeometry(4 << 10)
	h := NewHierarchy(geo)
	// Stream 1 MB: one miss per line at each level on first touch; the
	// page-size TLB misses once per 4 KB.
	for addr := uint64(0); addr < 1<<20; addr += 64 {
		h.Access(addr, false)
	}
	s := h.Stats()
	if s.Accesses != 1<<14 {
		t.Fatalf("accesses = %d", s.Accesses)
	}
	if s.TLBMisses != 256 {
		t.Fatalf("TLB misses = %d, want 256 (one per page)", s.TLBMisses)
	}
	if s.L3Misses != 1<<14 {
		t.Fatalf("cold L3 misses = %d, want all", s.L3Misses)
	}
}

func TestHierarchyHugePagesCutTLBMisses(t *testing.T) {
	small := NewHierarchy(PaperGeometry(4 << 10))
	huge := NewHierarchy(PaperGeometry(2 << 20))
	for addr := uint64(0); addr < 8<<20; addr += 64 {
		small.Access(addr, false)
		huge.Access(addr, false)
	}
	if small.Stats().TLBMisses <= huge.Stats().TLBMisses {
		t.Fatalf("huge pages did not reduce sequential TLB misses: %d vs %d",
			small.Stats().TLBMisses, huge.Stats().TLBMisses)
	}
}

func TestNTStoreBypassesCaches(t *testing.T) {
	h := NewHierarchy(PaperGeometry(4 << 10))
	h.NTStore(0)
	s := h.Stats()
	if s.L1Hits+s.L2Hits+s.L3Hits+s.L3Misses != 0 {
		t.Fatal("NT store touched the caches")
	}
	if s.NTStores != 1 || s.Accesses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// The line must not be cached afterwards.
	h.Access(0, false)
	if h.Stats().L1Hits != 0 {
		t.Fatal("NT store populated L1")
	}
}

func TestTakeStatsSplitsPhases(t *testing.T) {
	h := NewHierarchy(PaperGeometry(4 << 10))
	h.Access(0, false)
	p1 := h.TakeStats()
	h.Access(64, false)
	h.Access(128, false)
	p2 := h.TakeStats()
	if p1.Accesses != 1 || p2.Accesses != 2 {
		t.Fatalf("phase split wrong: %d / %d", p1.Accesses, p2.Accesses)
	}
}

func TestStatsAddAndRates(t *testing.T) {
	a := Stats{L2Hits: 3, L2Misses: 1, L3Hits: 1, L3Misses: 1}
	b := Stats{L2Hits: 1, L2Misses: 3}
	a.Add(b)
	if a.L2Hits != 4 || a.L2Misses != 4 {
		t.Fatalf("add wrong: %+v", a)
	}
	if a.L2HitRate() != 0.5 {
		t.Fatalf("L2 hit rate = %g", a.L2HitRate())
	}
	var empty Stats
	if empty.L2HitRate() != 0 {
		t.Fatal("empty rate should be 0")
	}
}

func TestTLBForPageSizes(t *testing.T) {
	if TLBFor(4<<10).Entries != 256 {
		t.Fatal("4 KB TLB should have 256 entries")
	}
	if TLBFor(2<<20).Entries != 32 {
		t.Fatal("2 MB TLB should have 32 entries")
	}
}

func simWorkload(n, ratio int) (tuple.Relation, tuple.Relation) {
	w, err := datagen.Generate(datagen.Config{BuildSize: n, ProbeSize: n * ratio, Seed: 42})
	if err != nil {
		panic(err)
	}
	return w.Build, w.Probe
}

func TestSimulateAllAlgorithms(t *testing.T) {
	build, probe := simWorkload(1<<12, 4)
	for _, name := range []string{"PRB", "NOP", "CHTJ", "MWAY", "NOPA", "PRO",
		"PRL", "PRA", "CPRL", "CPRA", "PROiS", "PRLiS", "PRAiS"} {
		ps, err := Simulate(name, build, probe, 6, ScaledGeometry(4<<10, 16))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ps.Partition.Accesses == 0 {
			t.Fatalf("%s: empty partition/build phase", name)
		}
		if ps.Join.Accesses == 0 {
			t.Fatalf("%s: empty join/probe phase", name)
		}
	}
	if _, err := Simulate("no-such-join", build, probe, 6, PaperGeometry(4<<10)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSWWCBReducesTLBMisses(t *testing.T) {
	// The core SWWCB claim (Section 5.1): buffered scatter cuts TLB
	// misses by roughly tuples-per-cache-line versus direct scatter,
	// because only full-line flushes touch the output pages. The input
	// must be large enough that each partition's write cursor sits on
	// its own page (1024 partitions x 4 KB needs >= 512k tuples).
	build, _ := simWorkload(1<<19, 0)
	const bits = 10 // 1024 partitions >> 256 TLB entries
	geo := PaperGeometry(4 << 10)

	direct := NewHierarchy(geo)
	spD := &space{next: uint64(geo.PageBytes)}
	simPartitionPass(direct, spD, build, bits, false, geo.PageBytes)

	buffered := NewHierarchy(geo)
	spB := &space{next: uint64(geo.PageBytes)}
	simPartitionPass(buffered, spB, build, bits, true, geo.PageBytes)

	d := direct.Stats().TLBMisses
	b := buffered.Stats().TLBMisses
	if b*2 >= d {
		t.Fatalf("SWWCB TLB misses %d not well below direct %d", b, d)
	}
}

func TestPRBRegressesUnderHugePages(t *testing.T) {
	// Figure 8's standout: PRB (no SWWCB, 128 open partitions per pass)
	// fits the 256-entry small-page TLB but thrashes the 32-entry
	// huge-page TLB. The effect requires each partition's cursor on a
	// distinct huge page, which at full scale needs gigabytes; we keep
	// the paper's entry counts and shrink the page pair proportionally
	// (4 KB/256 entries vs 16 KB/32 entries at 2^18 tuples, so the 128
	// write cursors cover 128 distinct huge pages).
	build, probe := simWorkload(1<<18, 1)
	small := PaperGeometry(4 << 10)
	huge := PaperGeometry(4 << 10)
	huge.PageBytes = 16 << 10
	huge.TLB = TLBFor(2 << 20)
	resSmall, err := Simulate("PRB", build, probe, 14, small)
	if err != nil {
		t.Fatal(err)
	}
	resHuge, err := Simulate("PRB", build, probe, 14, huge)
	if err != nil {
		t.Fatal(err)
	}
	if resHuge.Partition.TLBMisses <= resSmall.Partition.TLBMisses {
		t.Fatalf("PRB partition TLB misses: huge %d <= small %d — expected regression",
			resHuge.Partition.TLBMisses, resSmall.Partition.TLBMisses)
	}
}

func TestPROImprovesUnderHugePages(t *testing.T) {
	build, probe := simWorkload(1<<15, 2)
	geoSmall := PaperGeometry(4 << 10)
	geoHuge := PaperGeometry(2 << 20)
	small, err := Simulate("PRO", build, probe, 10, geoSmall)
	if err != nil {
		t.Fatal(err)
	}
	huge, err := Simulate("PRO", build, probe, 10, geoHuge)
	if err != nil {
		t.Fatal(err)
	}
	nsSmall := geoSmall.ModeledNanos(small.Partition) + geoSmall.ModeledNanos(small.Join)
	nsHuge := geoHuge.ModeledNanos(huge.Partition) + geoHuge.ModeledNanos(huge.Join)
	if nsHuge >= nsSmall {
		t.Fatalf("PRO modeled time with huge pages %.0fns not better than 4K %.0fns", nsHuge, nsSmall)
	}
}

func TestPartitionedJoinHasFewerMissesThanNOP(t *testing.T) {
	// Table 4's core contrast: the partitioned join phase is nearly
	// cache-resident while NOP's global table thrashes, once the build
	// side exceeds the (scaled) LLC.
	build, probe := simWorkload(1<<15, 4) // 256 KB build >> scaled 30/64 MB L3? use scale 64
	geo := ScaledGeometry(4<<10, 64)      // L3 = 480 KB, L2 = 4 KB
	nop, err := Simulate("NOP", build, probe, 0, geo)
	if err != nil {
		t.Fatal(err)
	}
	pro, err := Simulate("PRO", build, probe, 8, geo)
	if err != nil {
		t.Fatal(err)
	}
	if pro.Join.L3Misses >= nop.Join.L3Misses {
		t.Fatalf("PRO join L3 misses %d not below NOP %d", pro.Join.L3Misses, nop.Join.L3Misses)
	}
	if pro.Join.L2HitRate() <= nop.Join.L2HitRate() {
		t.Fatalf("PRO join L2 hit rate %.2f not above NOP %.2f",
			pro.Join.L2HitRate(), nop.Join.L2HitRate())
	}
}

func TestCHTJDoublesProbeAccesses(t *testing.T) {
	build, probe := simWorkload(1<<13, 4)
	geo := ScaledGeometry(4<<10, 64)
	nop, _ := Simulate("NOP", build, probe, 0, geo)
	chtj, _ := Simulate("CHTJ", build, probe, 0, geo)
	// Table 4: CHTJ suffers roughly twice the probe-phase misses of NOP
	// because of the bitmap + array double lookup.
	if chtj.Join.Accesses <= nop.Join.Accesses {
		t.Fatalf("CHTJ probe accesses %d not above NOP %d", chtj.Join.Accesses, nop.Join.Accesses)
	}
}

func TestModeledNanosMonotone(t *testing.T) {
	g := PaperGeometry(4 << 10)
	cheap := Stats{Accesses: 100, L1Hits: 100}
	costly := Stats{Accesses: 100, L3Misses: 100, TLBMisses: 100}
	if g.ModeledNanos(cheap) >= g.ModeledNanos(costly) {
		t.Fatal("cost model not monotone in misses")
	}
}

func TestSpaceAllocatorPageAligned(t *testing.T) {
	sp := &space{}
	a := sp.alloc(100, 4096)
	b := sp.alloc(1, 4096)
	if a%4096 != 0 || b%4096 != 0 || b <= a {
		t.Fatalf("allocations a=%d b=%d", a, b)
	}
}
