// Command simulate drives the two hardware simulators directly: the
// trace-driven cache/TLB model (internal/memsim) and the discrete-event
// NUMA machine (internal/numasim). joinbench uses both through the
// experiment definitions; this tool exposes them for ad-hoc what-if
// questions ("how would CPRA behave with a 1 MB L3 and 64 KB pages?",
// "what does the bandwidth timeline look like with 16 workers?").
//
// Usage:
//
//	simulate -mode cache -algo PRO -build 262144 -probe 524288 -page 4096
//	simulate -mode cache -algo PRB -bits 14 -page 2097152
//	simulate -mode numa -algo CPRL -workers 60 -bits 10
//	simulate -mode numa -algo PROiS -workers 32
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mmjoin/internal/datagen"
	"mmjoin/internal/memsim"
	"mmjoin/internal/numa"
	"mmjoin/internal/numasim"
	"mmjoin/internal/radix"
	"mmjoin/internal/sched"
)

func main() {
	var (
		mode    = flag.String("mode", "cache", "simulator: cache (memsim) or numa (numasim)")
		algo    = flag.String("algo", "PRO", "algorithm (Table 2 abbreviation)")
		build   = flag.Int("build", 1<<18, "|R| tuples")
		probe   = flag.Int("probe", 1<<19, "|S| tuples")
		bits    = flag.Uint("bits", 0, "radix bits (0 = Equation (1))")
		page    = flag.Int64("page", 4096, "page size in bytes (cache mode)")
		scale   = flag.Int("cachescale", 64, "divide cache sizes by this factor (cache mode)")
		workers = flag.Int("workers", 60, "simulated workers (numa mode)")
		seed    = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	w, err := datagen.Generate(datagen.Config{BuildSize: *build, ProbeSize: *probe, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	b := *bits
	if b == 0 {
		b = radix.PredictBits(*build, 1, 32, radix.PaperMachine())
	}

	switch *mode {
	case "cache":
		geo := memsim.ScaledGeometry(*page, *scale)
		res, err := memsim.Simulate(*algo, w.Build, w.Probe, b, geo)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s over |R|=%d |S|=%d, %d radix bits, %d B pages (caches 1/%d):\n",
			*algo, *build, *probe, b, *page, *scale)
		fmt.Printf("  partition/build: %s IPC=%.2f\n", res.Partition.String(), res.Partition.IPC(geo))
		fmt.Printf("  join/probe:      %s IPC=%.2f\n", res.Join.String(), res.Join.IPC(geo))
		fmt.Printf("  modeled total:   %.2f ms\n", res.ModeledTotalNanos(geo)/1e6)
	case "numa":
		topo := numa.PaperTopology()
		m := numasim.PaperMachine()
		// Keep enough co-partitions that the task queue feeds every
		// worker, as at paper scale.
		for 1<<b < 8**workers {
			b++
		}
		var tasks []numasim.Task
		var order []int
		switch {
		case strings.HasPrefix(*algo, "CPR"):
			pr := radix.PartitionChunked(w.Build, b, 8, true)
			ps := radix.PartitionChunked(w.Probe, b, 8, true)
			tasks = numasim.FromChunkedPartitions(topo, pr, ps)
			order = sched.SequentialOrder(len(tasks))
		default:
			pr := radix.PartitionGlobal(w.Build, b, 8, true)
			ps := radix.PartitionGlobal(w.Probe, b, 8, true)
			tasks = numasim.FromGlobalPartitions(topo, pr, ps)
			if strings.HasSuffix(*algo, "iS") {
				order = sched.RoundRobinOrder(len(tasks), topo.Nodes, numasim.HomeNodeOfPartition(topo, pr))
			} else {
				order = sched.SequentialOrder(len(tasks))
			}
		}
		res, err := numasim.Simulate(m, tasks, order, *workers)
		if err != nil {
			fatal(err)
		}
		util := res.NodeUtilization(m)
		fmt.Printf("%s join phase on the simulated 4-socket machine, %d workers, %d co-partitions:\n",
			*algo, *workers, len(tasks))
		fmt.Printf("  makespan:          %.2f ms\n", res.Makespan*1000)
		fmt.Printf("  node utilization:  %.2f %.2f %.2f %.2f\n", util[0], util[1], util[2], util[3])
		fmt.Printf("  active nodes/10th: %v\n", res.ActiveNodesOverTime(m, 10, 0.3))
	default:
		fatal(fmt.Errorf("unknown mode %q (cache or numa)", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simulate:", err)
	os.Exit(1)
}
