// Command datagen generates join workloads in the paper's setup (dense
// unique build keys, foreign-key probe side, optional Zipf skew and
// domain holes) and stores them in the binary workload format, so that
// expensive datasets are generated once and reused across runs.
//
// Usage:
//
//	datagen -build 16000000 -probe 160000000 -o workload.mmjw
//	datagen -build 4000000 -probe 4000000 -zipf 0.99 -o skewed.mmjw
//	datagen -inspect workload.mmjw
package main

import (
	"flag"
	"fmt"
	"os"

	"mmjoin/internal/datagen"
)

func main() {
	var (
		build    = flag.Int("build", 1_000_000, "|R|: number of build tuples")
		probe    = flag.Int("probe", 10_000_000, "|S|: number of probe tuples")
		zipf     = flag.Float64("zipf", 0, "probe-side Zipf skew factor in [0,1)")
		holes    = flag.Int("holes", 0, "domain factor k: keys drawn from [0, k*|R|)")
		nullfrac = flag.Float64("nullfrac", 0, "fraction of NULL join keys per side in [0,1]")
		seed     = flag.Uint64("seed", 42, "generator seed")
		out      = flag.String("o", "", "output file (required unless -inspect)")
		inspect  = flag.String("inspect", "", "print the header of an existing workload file")
	)
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w, err := datagen.ReadWorkload(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("build tuples:  %d\nprobe tuples:  %d\nkey domain:    %d\n",
			len(w.Build), len(w.Probe), w.Domain)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -o is required")
		flag.Usage()
		os.Exit(2)
	}
	w, err := datagen.Generate(datagen.Config{
		BuildSize:  *build,
		ProbeSize:  *probe,
		Zipf:       *zipf,
		HoleFactor: *holes,
		NullFrac:   *nullfrac,
		Seed:       *seed,
	})
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := datagen.WriteWorkload(f, w); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: |R|=%d |S|=%d domain=%d (%.1f MB)\n",
		*out, len(w.Build), len(w.Probe), w.Domain,
		float64(w.Build.SizeBytes()+w.Probe.SizeBytes())/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
