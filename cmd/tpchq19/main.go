// Command tpchq19 runs the TPC-H Query 19 study of Section 8: a real
// query around the joins, with late materialization, dictionary-coded
// predicates and per-algorithm executors.
//
// Usage:
//
//	tpchq19 -sf 1 -algo all
//	tpchq19 -sf 1 -algo CPRA -threads 16
//	tpchq19 -sf 1 -selectivity 0.5 -algo NOP
//	tpchq19 -sf 1 -morph
package main

import (
	"flag"
	"fmt"
	"os"

	"mmjoin/internal/tpch"
)

func main() {
	var (
		sf      = flag.Float64("sf", 1, "TPC-H scale factor (paper: 100)")
		threads = flag.Int("threads", 8, "worker threads")
		algo    = flag.String("algo", "all", "join executor: NOP, NOPA, CPRL, CPRA or all")
		sel     = flag.Float64("selectivity", 0.0357, "pushed-down predicate selectivity (paper's Q19: 3.57%)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		morph   = flag.Bool("morph", false, "run the Appendix G morphing variants instead")
	)
	flag.Parse()

	tb, err := tpch.Generate(tpch.Config{ScaleFactor: *sf, Seed: *seed, ShipSelectivity: *sel})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("TPC-H sf=%.2f: %d parts, %d lineitems, pushdown selectivity %.2f%%\n\n",
		*sf, tb.Part.NumTuples, tb.Lineitem.NumTuples, tpch.Selectivity(tb.Lineitem)*100)

	if *morph {
		fmt.Println("Appendix G: morphing the microbenchmark into Q19 (NOP)")
		for v := tpch.MorphPrefiltered; v <= tpch.MorphPipelined; v++ {
			res, err := tpch.RunMorph(tb, v, *threads)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  variant %d: total %8.1fms  candidates %8d  matches %7d\n",
				v, ms(res.Total), res.JoinCandidates, res.Matches)
		}
		return
	}

	algos := []string{*algo}
	if *algo == "all" {
		algos = []string{"NOP", "NOPA", "CPRL", "CPRA"}
	}
	for _, a := range algos {
		res, err := tpch.RunQ19(tb, a, *threads)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-5s total %8.1fms (build %7.1fms, probe+rest %8.1fms)  revenue %14.2f  matches %d\n",
			a, ms(res.Total), ms(res.BuildTime), ms(res.ProbeTime), res.Revenue, res.Matches)
	}
}

func ms(d interface{ Microseconds() int64 }) float64 {
	return float64(d.Microseconds()) / 1000
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpchq19:", err)
	os.Exit(1)
}
