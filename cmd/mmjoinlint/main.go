// Command mmjoinlint runs the repository's domain-specific static
// analyzers (internal/analysis) over a set of packages:
//
//	go run ./cmd/mmjoinlint ./...
//
// Exit status is 0 when clean, 1 when any diagnostic is reported, and
// 2 on usage or load errors. Findings suppressed by //mmjoin:allow
// comments are hidden unless -suppressed is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mmjoin/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmjoinlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	showSuppressed := fs.Bool("suppressed", false, "also show findings suppressed by //mmjoin:allow comments")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", ".", "directory to run in")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mmjoinlint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nExit status:\n")
		fmt.Fprintf(stderr, "  0  clean (suppressed findings do not fail the run)\n")
		fmt.Fprintf(stderr, "  1  at least one unsuppressed finding\n")
		fmt.Fprintf(stderr, "  2  usage, load or environment error (unknown analyzer,\n")
		fmt.Fprintf(stderr, "     unparsable package, perfgate toolchain mismatch)\n")
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "mmjoinlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "mmjoinlint: %v\n", err)
		return 2
	}

	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		// An analyzer that cannot do its job (perfgate toolchain
		// mismatch, compiler invocation failure) is an environment
		// problem, not a finding: exit 2, like a load error.
		fmt.Fprintf(stderr, "mmjoinlint: %v\n", err)
		return 2
	}
	if !*showSuppressed {
		kept := diags[:0]
		for _, d := range diags {
			if !d.Suppressed {
				kept = append(kept, d)
			}
		}
		diags = kept
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "mmjoinlint: %v\n", err)
			return 2
		}
	} else {
		onActions := os.Getenv("GITHUB_ACTIONS") == "true"
		for _, d := range diags {
			suffix := ""
			if d.Suppressed {
				suffix = " (suppressed)"
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message, suffix)
			if onActions && !d.Suppressed {
				fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d,title=mmjoinlint/%s::%s\n",
					d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			}
		}
	}

	for _, d := range diags {
		if !d.Suppressed {
			return 1
		}
	}
	return 0
}
