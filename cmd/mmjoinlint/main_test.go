package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"mmjoin/internal/analysis"
)

// These tests are the CI contract: a module with an injected invariant
// violation must make the driver exit non-zero with the finding named,
// and a clean module must pass.

const scratchMod = "module scratch\n\ngo 1.23\n"

// badJoin violates two invariants at once: a minted root context in an
// internal/join package and an append inside a //mmjoin:hotpath region.
const badJoin = `package join

import "context"

func Run() error {
	ctx := context.Background()
	_ = ctx
	return nil
}

//mmjoin:hotpath
func hot(dst []int) []int {
	return append(dst, 1)
}
`

const goodJoin = `package join

import "context"

func RunContext(ctx context.Context) error {
	return ctx.Err()
}
`

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestInjectedViolationFails(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":               scratchMod,
		"internal/join/bad.go": badJoin,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	text := out.String()
	for _, sub := range []string{"ctxflow", "context.Background", "hotalloc", "append in hot path"} {
		if !strings.Contains(text, sub) {
			t.Errorf("output does not name the violation %q:\n%s", sub, text)
		}
	}
}

func TestCleanModulePasses(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":                scratchMod,
		"internal/join/good.go": goodJoin,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":               scratchMod,
		"internal/join/bad.go": badJoin,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-C", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	byAnalyzer := map[string]bool{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = true
	}
	if !byAnalyzer["ctxflow"] || !byAnalyzer["hotalloc"] {
		t.Fatalf("JSON diagnostics missing expected analyzers: %+v", diags)
	}
}

func TestOnlyFilter(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":               scratchMod,
		"internal/join/bad.go": badJoin,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-only", "ctxflow", "-C", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(out.String(), "hotalloc") {
		t.Fatalf("-only ctxflow still ran hotalloc:\n%s", out.String())
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "nosuch") {
		t.Fatalf("stderr does not name the unknown analyzer: %s", errb.String())
	}
}

// perfMod is scratchMod with the toolchain pinned to the compiler
// running this test — exactly what perfgate demands. runtime.Version()
// and `go env GOVERSION` agree because the test binary is built by the
// module's own pinned toolchain.
func perfMod() string {
	// The go directive stays below the toolchain version: a toolchain
	// line equal to the go line is redundant and the go command insists
	// on rewriting the file, which a readonly `go list` turns into an
	// error.
	return "module scratch\n\ngo 1.23\n\ntoolchain " + runtime.Version() + "\n"
}

// leakyKernel mimics a batch-probe kernel with an injected formatting
// call — the classic debugging leftover the gate exists to catch.
const leakyKernel = `package join

import "fmt"

//mmjoin:noescape
func probeBatch(keys []uint32, out []string) {
	for i, k := range keys {
		out[i] = fmt.Sprintf("k=%d", k)
	}
}
`

// TestPerfGateInjectedEscape is the CI contract for the compiler-feedback
// gate: injecting fmt.Sprintf into an annotated kernel must fail the run
// with the function, the line and the compiler's diagnostic named.
func TestPerfGateInjectedEscape(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":                perfMod(),
		"internal/join/hot.go":  leakyKernel,
		"internal/join/cold.go": goodJoin,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-only", "perfgate", "-C", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	text := out.String()
	for _, sub := range []string{"perfgate", "probeBatch", "escapes to heap"} {
		if !strings.Contains(text, sub) {
			t.Errorf("output does not name %q:\n%s", sub, text)
		}
	}
	if !regexp.MustCompile(`hot\.go:\d+:\d+:`).MatchString(text) {
		t.Errorf("output does not carry a hot.go line:col position:\n%s", text)
	}
}

// TestPerfGateCleanKernel is the other half of the contract: the same
// kernel without the formatting call passes the gate.
func TestPerfGateCleanKernel(t *testing.T) {
	clean := `package join

//mmjoin:noescape
func probeBatch(keys []uint32, out []uint64) {
	for i, k := range keys {
		out[i] = uint64(k)
	}
}
`
	dir := writeTree(t, map[string]string{
		"go.mod":               perfMod(),
		"internal/join/hot.go": clean,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-only", "perfgate", "-C", dir, "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestPerfGateToolchainMismatch pins the scratch module to a toolchain
// that cannot be the one running the test: an environment error (exit
// 2), never a lint finding — compiler diagnostics from the wrong
// compiler would be phantom regressions.
func TestPerfGateToolchainMismatch(t *testing.T) {
	mod := "module scratch\n\ngo 1.23\n\ntoolchain go1.23.99\n"
	dir := writeTree(t, map[string]string{
		"go.mod":               mod,
		"internal/join/hot.go": leakyKernel,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-only", "perfgate", "-C", dir, "./..."}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "toolchain") {
		t.Fatalf("stderr does not explain the toolchain mismatch: %s", errb.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Fatalf("-list output missing %s:\n%s", a.Name, out.String())
		}
	}
}
