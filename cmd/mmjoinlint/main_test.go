package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mmjoin/internal/analysis"
)

// These tests are the CI contract: a module with an injected invariant
// violation must make the driver exit non-zero with the finding named,
// and a clean module must pass.

const scratchMod = "module scratch\n\ngo 1.23\n"

// badJoin violates two invariants at once: a minted root context in an
// internal/join package and an append inside a //mmjoin:hotpath region.
const badJoin = `package join

import "context"

func Run() error {
	ctx := context.Background()
	_ = ctx
	return nil
}

//mmjoin:hotpath
func hot(dst []int) []int {
	return append(dst, 1)
}
`

const goodJoin = `package join

import "context"

func RunContext(ctx context.Context) error {
	return ctx.Err()
}
`

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestInjectedViolationFails(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":               scratchMod,
		"internal/join/bad.go": badJoin,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	text := out.String()
	for _, sub := range []string{"ctxflow", "context.Background", "hotalloc", "append in hot path"} {
		if !strings.Contains(text, sub) {
			t.Errorf("output does not name the violation %q:\n%s", sub, text)
		}
	}
}

func TestCleanModulePasses(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":                scratchMod,
		"internal/join/good.go": goodJoin,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":               scratchMod,
		"internal/join/bad.go": badJoin,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-json", "-C", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, errb.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	byAnalyzer := map[string]bool{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = true
	}
	if !byAnalyzer["ctxflow"] || !byAnalyzer["hotalloc"] {
		t.Fatalf("JSON diagnostics missing expected analyzers: %+v", diags)
	}
}

func TestOnlyFilter(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":               scratchMod,
		"internal/join/bad.go": badJoin,
	})
	var out, errb bytes.Buffer
	code := run([]string{"-only", "ctxflow", "-C", dir, "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(out.String(), "hotalloc") {
		t.Fatalf("-only ctxflow still ran hotalloc:\n%s", out.String())
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "nosuch") {
		t.Fatalf("stderr does not name the unknown analyzer: %s", errb.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(out.String(), a.Name) {
			t.Fatalf("-list output missing %s:\n%s", a.Name, out.String())
		}
	}
}
