// Command joinoracle runs the differential-testing oracle: every join
// algorithm under seeded deterministic schedules, cross-checked against
// a naïve reference model, with per-phase byte accounting, trace span
// balance and arena leak detection. Divergences are shrunk to a minimal
// case and printed as a single replayable seed.
//
// Usage:
//
//	joinoracle [-algos PRO,NOP] [-kinds all] [-nullfracs 0,0.1]
//	           [-budgets all] [-schedules 32] [-build 20] [-probe 22]
//	           [-seed 1] [-inject fault] [-shrink 64] [-timeout 10m]
//	joinoracle -replay 0xSEED [-inject fault]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mmjoin/internal/join"
	"mmjoin/internal/oracle"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("joinoracle", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		replay    = fs.String("replay", "", "replay one packed case seed (hex or decimal) instead of sweeping")
		algos     = fs.String("algos", "", "comma-separated algorithms to sweep (default: all)")
		kinds     = fs.String("kinds", "inner", "comma-separated join kinds to sweep, or \"all\" (inner, left-outer, right-outer, full-outer, left-semi, left-anti)")
		nullfracs = fs.String("nullfracs", "0", "comma-separated NULL-key densities to sweep, each one of 0, 0.1, 0.25, 0.5")
		budgets   = fs.String("budgets", "0", "comma-separated memory-budget multipliers of |R| bytes to sweep, each one of 0 (unlimited), 2, 1, 0.5, 0.25, or \"all\"")
		schedules = fs.Int("schedules", 8, "seeded schedules per algorithm (each runs batch and scalar)")
		buildLog2 = fs.Int("build", 12, "log2 of the build relation size")
		probeLog2 = fs.Int("probe", 14, "log2 of the probe relation size")
		seed      = fs.Uint64("seed", 1, "base seed perturbing every derived case")
		inject    = fs.String("inject", "none", "inject a fault into every primary run: none, flip-payload, drop-match, extra-span, leak-buffer, double-free, spill-create-fail, spill-short-write, spill-read-corrupt")
		shrink    = fs.Int("shrink", 64, "max oracle evaluations spent shrinking each failure (0 disables)")
		timeout   = fs.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
		offheap   = fs.Bool("offheap", false, "run every case with off-heap per-case arenas (GC-invisible mmap regions) and check the process-wide off-heap region balance per case")
		verbose   = fs.Bool("v", false, "log every shrink step and the sweep summary even on success")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fault, err := oracle.ParseFault(*inject)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *offheap {
		oracle.OffHeapArenas = true
	}

	if *replay != "" {
		return runReplay(ctx, *replay, fault, stdout, stderr)
	}

	sweepKinds, err := parseKinds(*kinds)
	if err != nil {
		fmt.Fprintln(stderr, "joinoracle:", err)
		return 2
	}
	nullIdxs, err := parseNullFracs(*nullfracs)
	if err != nil {
		fmt.Fprintln(stderr, "joinoracle:", err)
		return 2
	}
	budgetIdxs, err := parseBudgets(*budgets)
	if err != nil {
		fmt.Fprintln(stderr, "joinoracle:", err)
		return 2
	}

	cfg := oracle.SweepConfig{
		Kinds:          sweepKinds,
		NullFracIdxs:   nullIdxs,
		BudgetIdxs:     budgetIdxs,
		Schedules:      *schedules,
		BuildLog2:      *buildLog2,
		ProbeLog2:      *probeLog2,
		BaseSeed:       *seed,
		Inject:         fault,
		MaxShrinkEvals: *shrink,
		OffHeap:        *offheap,
		Out:            stdout,
	}
	if *shrink == 0 {
		cfg.MaxShrinkEvals = -1
	}
	if !*verbose {
		cfg.Out = nil
	}
	if *algos != "" {
		for _, a := range strings.Split(*algos, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.Algos = append(cfg.Algos, a)
			}
		}
	}
	failures, err := oracle.Sweep(ctx, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "joinoracle: %v\n", err)
		return 2
	}
	if len(failures) == 0 {
		names := cfg.Algos
		if names == nil {
			names = oracle.AlgorithmNames()
		}
		fmt.Fprintf(stdout, "joinoracle: OK — %d algorithms x %d kinds x %d null densities x %d budgets x %d schedules x {batch, scalar} at |R|=2^%d, zero divergences\n",
			len(names), len(sweepKinds), len(nullIdxs), len(budgetIdxs), *schedules, *buildLog2)
		return 0
	}
	for _, f := range failures {
		fmt.Fprintf(stdout, "DIVERGENCE %s (seed %#x)\n", f.Case, f.Case.Seed())
		for _, d := range f.Divergences {
			fmt.Fprintf(stdout, "  %s\n", d)
		}
		fmt.Fprintf(stdout, "  minimized: %s (seed %#x)\n", f.Shrunk, f.Shrunk.Seed())
		repro := f.Repro()
		if fault != oracle.FaultNone {
			repro += " -inject " + fault.String()
		}
		fmt.Fprintf(stdout, "  reproduce: %s\n", repro)
	}
	fmt.Fprintf(stdout, "joinoracle: %d divergent case(s)\n", len(failures))
	return 1
}

// parseKinds resolves the -kinds flag into the sweep's kind list.
func parseKinds(s string) ([]join.Kind, error) {
	if strings.TrimSpace(s) == "all" {
		return join.Kinds(), nil
	}
	var out []join.Kind
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		k, err := join.ParseKind(part)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	if out == nil {
		out = []join.Kind{join.Inner}
	}
	return out, nil
}

// parseNullFracs resolves the -nullfracs flag into NullFracs indices.
func parseNullFracs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -nullfracs value %q: %v", part, err)
		}
		idx := -1
		for i, nf := range oracle.NullFracs {
			if nf == f {
				idx = i
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("-nullfracs value %g is not an encodable density %v", f, oracle.NullFracs)
		}
		out = append(out, idx)
	}
	if out == nil {
		out = []int{0}
	}
	return out, nil
}

// parseBudgets resolves the -budgets flag into BudgetMults indices.
func parseBudgets(s string) ([]int, error) {
	if strings.TrimSpace(s) == "all" {
		out := make([]int, len(oracle.BudgetMults))
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		f, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -budgets value %q: %v", part, err)
		}
		idx := -1
		for i, m := range oracle.BudgetMults {
			if m == f {
				idx = i
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("-budgets value %g is not an encodable multiplier %v", f, oracle.BudgetMults)
		}
		out = append(out, idx)
	}
	if out == nil {
		out = []int{0}
	}
	return out, nil
}

func runReplay(ctx context.Context, arg string, fault oracle.Fault, stdout, stderr io.Writer) int {
	seed, err := strconv.ParseUint(arg, 0, 64)
	if err != nil {
		fmt.Fprintf(stderr, "joinoracle: bad -replay seed %q: %v\n", arg, err)
		return 2
	}
	c := oracle.FromSeed(seed)
	fmt.Fprintf(stdout, "replaying case %#x: %s\n", seed, c)
	divs, err := oracle.RunCase(ctx, c, fault)
	if err != nil {
		fmt.Fprintf(stderr, "joinoracle: %v\n", err)
		return 2
	}
	if len(divs) == 0 {
		fmt.Fprintln(stdout, "joinoracle: OK — case passes every check")
		return 0
	}
	for _, d := range divs {
		fmt.Fprintf(stdout, "  %s\n", d)
	}
	fmt.Fprintf(stdout, "joinoracle: %d divergence(s)\n", len(divs))
	return 1
}
