package main

import (
	"fmt"
	"strings"
	"testing"

	"mmjoin/internal/oracle"
)

// TestRunCleanSweep: a small sweep over two cheap algorithms exits 0.
func TestRunCleanSweep(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-algos", "NOP,PRO", "-schedules", "2", "-build", "7", "-probe", "9"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "zero divergences") {
		t.Fatalf("missing success line: %s", out.String())
	}
}

// TestRunInjectedFaultRoundTrip: an injected fault makes the sweep exit
// 1 and print a replay command whose seed, replayed on its own, still
// diverges — the end-to-end catch → shrink → replay contract.
func TestRunInjectedFaultRoundTrip(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-algos", "NOP", "-schedules", "1", "-build", "7", "-probe", "9",
		"-inject", "drop-match", "-shrink", "24"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	// Pull the printed repro command and re-run from the seed alone.
	var seed string
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "reproduce: joinoracle -replay ") {
			fields := strings.Fields(line)
			seed = fields[3]
		}
	}
	if seed == "" {
		t.Fatalf("no repro line in output: %s", out.String())
	}
	var replayOut, replayErr strings.Builder
	code = run([]string{"-replay", seed, "-inject", "drop-match"}, &replayOut, &replayErr)
	if code != 1 {
		t.Fatalf("replay of %s exited %d, want 1; stdout: %s", seed, code, replayOut.String())
	}
	if !strings.Contains(replayOut.String(), "matches") {
		t.Fatalf("replay did not report the matches divergence: %s", replayOut.String())
	}
}

// TestRunBudgetSweep: the spill matrix — budget-aware algorithms under
// every budget level — exits 0 with the budget count in the success
// line.
func TestRunBudgetSweep(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-algos", "HYBRID,ADAPT", "-kinds", "all", "-budgets", "all",
		"-schedules", "1", "-build", "7", "-probe", "9"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "5 budgets") {
		t.Fatalf("missing budget count in success line: %s", out.String())
	}
}

// TestRunSpillFaultRoundTrip: an injected spill fault on a spilling
// sweep makes the run exit 1 with a spill-fault divergence whose repro
// seed, replayed alone, still diverges.
func TestRunSpillFaultRoundTrip(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-algos", "HYBRID", "-budgets", "0.5", "-schedules", "1",
		"-build", "10", "-probe", "12", "-inject", "spill-short-write", "-shrink", "16"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "spill-fault") {
		t.Fatalf("missing spill-fault divergence: %s", out.String())
	}
	var seed string
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "reproduce: joinoracle -replay ") {
			fields := strings.Fields(line)
			seed = fields[3]
		}
	}
	if seed == "" {
		t.Fatalf("no repro line in output: %s", out.String())
	}
	var replayOut, replayErr strings.Builder
	code = run([]string{"-replay", seed, "-inject", "spill-short-write"}, &replayOut, &replayErr)
	if code != 1 {
		t.Fatalf("replay of %s exited %d, want 1; stdout: %s", seed, code, replayOut.String())
	}
	if !strings.Contains(replayOut.String(), "spill-fault") {
		t.Fatalf("replay did not report the spill-fault divergence: %s", replayOut.String())
	}
}

// TestRunReplayCleanSeed: replaying a seed that encodes a healthy case
// exits 0.
func TestRunReplayCleanSeed(t *testing.T) {
	c := oracle.Case{BuildLog2: 7, ProbeLog2: 8, Holes: 1, SchedSeed: 3}
	var out, errOut strings.Builder
	code := run([]string{"-replay", fmt.Sprintf("%#x", c.Seed())}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
}

// TestRunBadFlags: unparseable input is a usage error (exit 2), not a
// divergence.
func TestRunBadFlags(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-replay", "zzz"}, &out, &errOut); code != 2 {
		t.Fatalf("bad seed: exit %d, want 2", code)
	}
	if code := run([]string{"-inject", "nonsense"}, &out, &errOut); code != 2 {
		t.Fatalf("bad fault: exit %d, want 2", code)
	}
	if code := run([]string{"-algos", "NOSUCH", "-schedules", "1"}, &out, &errOut); code != 2 {
		t.Fatalf("bad algorithm: exit %d, want 2", code)
	}
	if code := run([]string{"-budgets", "0.75"}, &out, &errOut); code != 2 {
		t.Fatalf("bad budget: exit %d, want 2", code)
	}
}
