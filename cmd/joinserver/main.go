// Command joinserver runs the multi-tenant join service: a long-running
// process that admits many concurrent join queries over registered
// relations, shares built hash tables across queries through a
// fingerprint-keyed cache, and sheds load instead of queueing without
// bound.
//
// Usage:
//
//	joinserver -listen :8080                 # serve HTTP with demo relations
//	joinserver -loadtest                     # closed-loop load test, text report
//	joinserver -loadtest -duration 10s -clients 16 -design linear
//	joinserver -loadtest -overload           # drive past the budget, expect sheds
//	joinserver -loadtest -json               # machine-readable report
//	joinserver -loadtest -duration 3s -selfcheck   # CI smoke: exits nonzero on
//	                                               # no hits, leaks, or no sheds
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mmjoin/internal/datagen"
	"mmjoin/internal/join"
	"mmjoin/internal/offheap"
	"mmjoin/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("joinserver", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen   = fs.String("listen", "", "serve HTTP on this address (e.g. :8080)")
		loadtest = fs.Bool("loadtest", false, "run the closed-loop load test and exit")

		threads  = fs.Int("threads", 0, "per-query worker threads (0 = GOMAXPROCS)")
		slots    = fs.Int("slots", 0, "shared CPU slots across all queries (0 = GOMAXPROCS)")
		budgetMB = fs.Int64("budget-mb", 0, "admission memory budget in MiB (0 = 256)")
		cacheMB  = fs.Int64("cache-mb", 0, "build cache capacity in MiB (0 = 256)")
		queue    = fs.Int("queue", 0, "max queries waiting for admission (0 = 64)")
		wait     = fs.Duration("admit-wait", 0, "max admission wait before shedding (0 = 100ms)")
		useOff   = fs.Bool("offheap", false, "place cached tables in GC-free off-heap arenas")
		design   = fs.String("design", "", "default cached table design: chained, linear, robinhood, array, cht, sparse")

		duration  = fs.Duration("duration", 5*time.Second, "loadtest window")
		clients   = fs.Int("clients", 8, "loadtest closed-loop clients")
		buildSize = fs.Int("build-size", 1<<18, "loadtest hot build cardinality")
		probeSize = fs.Int("probe-size", 1024, "loadtest small probe cardinality")
		scanEvery = fs.Int("scan-every", 64, "every Nth query per client is a big scan (<0 disables)")
		overload  = fs.Bool("overload", false, "loadtest: cold uncacheable joins past the budget (expect sheds)")
		asJSON    = fs.Bool("json", false, "emit the loadtest report as JSON")
		selfcheck = fs.Bool("selfcheck", false, "verify cache hits, shedding and leak-freedom; exit nonzero on failure")
		seed      = fs.Uint64("seed", 0, "workload seed (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := server.Config{
		Threads:      *threads,
		WorkerSlots:  *slots,
		MemoryBudget: *budgetMB << 20,
		MaxQueued:    *queue,
		AdmitWait:    *wait,
		CacheBytes:   *cacheMB << 20,
		OffHeap:      *useOff,
	}
	if *design != "" {
		d, err := join.ParseTableDesign(*design)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		cfg.Design = d
	}

	switch {
	case *loadtest:
		lc := server.LoadConfig{
			Duration:  *duration,
			Clients:   *clients,
			BuildSize: *buildSize,
			ProbeSize: *probeSize,
			ScanEvery: *scanEvery,
			Design:    *design,
			Overload:  *overload,
			Seed:      *seed,
		}
		return runLoadtest(cfg, lc, *selfcheck, *asJSON, stdout, stderr)
	case *listen != "":
		return serve(cfg, *listen, *buildSize, *probeSize, *seed, stdout, stderr)
	default:
		fmt.Fprintln(stderr, "joinserver: nothing to do (pass -listen or -loadtest)")
		fs.Usage()
		return 2
	}
}

// runLoadtest drives the closed loop, prints the report, and — under
// -selfcheck — verifies the service's headline invariants: the cache
// produced hits, overload produced typed sheds (not errors or queue
// growth), and closing the server leaks no off-heap regions.
func runLoadtest(cfg server.Config, lc server.LoadConfig, selfcheck, asJSON bool, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	baseRegions := offheap.Outstanding()
	s := server.Open(cfg)
	report, err := server.RunLoad(ctx, s, lc)
	if err != nil {
		fmt.Fprintf(stderr, "joinserver: loadtest: %v\n", err)
		s.Close()
		return 1
	}
	if err := s.Close(); err != nil {
		fmt.Fprintf(stderr, "joinserver: close: %v\n", err)
		return 1
	}
	leaked := offheap.Outstanding() - baseRegions

	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		fmt.Fprintln(stdout, report.String())
	}

	if !selfcheck {
		return 0
	}
	failures := 0
	check := func(ok bool, format string, args ...any) {
		if !ok {
			failures++
			fmt.Fprintf(stderr, "selfcheck: FAIL: "+format+"\n", args...)
		}
	}
	check(leaked == 0, "%d off-heap regions leaked after Close", leaked)
	check(report.Errors == 0, "%d unexpected query errors", report.Errors)
	if lc.Overload {
		check(report.Shed > 0, "overload run shed nothing")
	} else {
		check(report.Hits > 0, "no cache hits in a cacheable run")
		check(report.Speedup > 1, "warm probe not faster than cold (%.2fx)", report.Speedup)
		// Shedding needs its own pass: a fresh server with a budget that
		// fits exactly one build, driven by uncacheable queries.
		shed := overloadProbe(ctx, lc, stderr)
		check(shed > 0, "overload probe shed nothing")
	}
	if failures > 0 {
		return 1
	}
	fmt.Fprintln(stdout, "selfcheck: ok")
	return 0
}

// overloadProbe runs a short overload burst against a deliberately
// tiny admission budget and reports how many queries shed. The modeled
// footprint is 16 B per build tuple (DESIGN.md §13), so a budget of
// half the hot build's footprint admits queries one at a time and the
// closed-loop surplus must shed with ErrOverloaded.
func overloadProbe(ctx context.Context, lc server.LoadConfig, stderr io.Writer) int64 {
	small := server.Open(server.Config{
		MemoryBudget: 16 * int64(lc.BuildSize),
		MaxQueued:    2,
		AdmitWait:    5 * time.Millisecond,
	})
	defer small.Close()
	probeCfg := lc
	probeCfg.Duration = time.Second
	probeCfg.Overload = true
	probeCfg.ScanEvery = -1
	rep, err := server.RunLoad(ctx, small, probeCfg)
	if err != nil {
		fmt.Fprintf(stderr, "selfcheck: overload probe: %v\n", err)
		return 0
	}
	return rep.Shed
}

// serve registers a demo PK/FK workload (a query can reference "build"
// and "probe" immediately) and serves the HTTP API until interrupted.
func serve(cfg server.Config, addr string, buildSize, probeSize int, seed uint64, stdout, stderr io.Writer) int {
	if seed == 0 {
		seed = 1
	}
	w, err := datagen.Generate(datagen.Config{
		BuildSize: buildSize,
		ProbeSize: max(probeSize, 1024),
		Zipf:      0.5,
		Seed:      seed,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	s := server.Open(cfg)
	if err := s.RegisterRelation("build", w.Build); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := s.RegisterRelation("probe", w.Probe); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stdout, "joinserver: listening on %s (relations: build[%d], probe[%d])\n",
		addr, len(w.Build), len(w.Probe))

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "joinserver: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)
	if err := s.Close(); err != nil {
		fmt.Fprintf(stderr, "joinserver: close: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "joinserver: shut down cleanly")
	return 0
}
