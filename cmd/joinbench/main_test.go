package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceUnwritablePathFailsFast is the regression test for the
// silent-trace-drop bug: an unwritable -trace path must abort with a
// usage error naming the flag before any experiment runs, not after
// the full measurement.
func TestTraceUnwritablePathFailsFast(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "out.json")
	var out, errb bytes.Buffer
	code := run([]string{"-run", "tab4", "-quick", "-trace", bad}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-trace") {
		t.Fatalf("error does not name the offending flag: %s", errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("experiments ran before the trace path was validated:\n%s", out.String())
	}
}

// TestTraceWritesFile covers the happy path end to end on the cheapest
// (simulated) experiment: exit 0 and a valid JSON trace on disk.
func TestTraceWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errb bytes.Buffer
	code := run([]string{"-run", "tab4", "-quick", "-trace", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("trace file is not valid JSON:\n%.200s", data)
	}
}

func TestUnwritableOutputFailsFast(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "report.txt")
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "tab4", "-quick", "-o", bad}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-o") {
		t.Fatalf("error does not name the offending flag: %s", errb.String())
	}
}

func TestNoRunIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestOracleSmokeMode: -oracle with no -run sweeps the differential
// oracle and exits 0 on a clean pass (the CI smoke shape). The sweep
// size is fixed inside run(), so this doubles as a regression test
// that the wiring stays cheap enough for a test run.
func TestOracleSmokeMode(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle smoke sweep is a few seconds")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-oracle"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "oracle smoke pass clean") {
		t.Fatalf("missing clean-pass line: %s", out.String())
	}
}
