// Command joinbench regenerates the tables and figures of Schuh et al.
// (SIGMOD 2016) from this reproduction. Each experiment prints the
// paper's expected shape next to the measured (or simulated) rows.
//
// Usage:
//
//	joinbench -list
//	joinbench -run fig1
//	joinbench -run all -scale 64 -threads 16
//	joinbench -run fig10 -quick
//	joinbench -run fig1 -json
//	joinbench -run fig1 -trace trace.json   # Chrome/Perfetto trace_event output
//	joinbench -microbench -benchtime 1s -o BENCH_baseline.json
//	joinbench -microbench -benchtime 0.3s -microsizes 16,20   # CI smoke
//	joinbench -microbench -microdists 0,4,8,16 -microreps 6   # prefetch sweep
//	joinbench -run offheap                  # GC-visible footprint, heap vs off-heap
//	joinbench -run fig1 -offheap            # any experiment on off-heap arenas
//	joinbench -oracle -offheap              # oracle smoke with off-heap region checks
//	joinbench -oracle                       # differential-oracle smoke pass
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"mmjoin/internal/bench"
	"mmjoin/internal/join"
	"mmjoin/internal/oracle"
	"mmjoin/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// parseIntList parses a comma-separated integer list, skipping empty
// elements ("" yields nil).
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("joinbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runID   = fs.String("run", "", "experiment id (fig1..fig19, tab3, tab4) or 'all'")
		list    = fs.Bool("list", false, "list available experiments")
		scale   = fs.Int("scale", 64, "divide the paper's tuple counts by this factor")
		threads = fs.Int("threads", 0, "worker threads (0 = auto)")
		seed    = fs.Uint64("seed", 0, "workload seed (0 = default)")
		quick   = fs.Bool("quick", false, "trim sweeps for a fast pass")
		repeat  = fs.Int("repeat", 1, "repeat measured joins, report the fastest")
		kindStr = fs.String("kind", "inner", "join kind for measured runs: inner, left-outer, right-outer, full-outer, left-semi, left-anti")
		nullFr  = fs.Float64("nullfrac", 0, "fraction of keys on each side replaced by the NULL sentinel (turns on nullable-key handling)")
		budget  = fs.Int64("budget", 0, "memory budget in bytes for budget-aware algorithms (HYBRID, ADAPT); 0 = unlimited")
		format  = fs.String("format", "text", "output format: text or markdown")
		asJSON  = fs.Bool("json", false, "emit machine-readable per-algorithm records instead of tables")
		out     = fs.String("o", "", "write reports to a file instead of stdout")
		traceTo = fs.String("trace", "", "write a Chrome/Perfetto trace_event JSON file covering every executed join")

		offheap = fs.Bool("offheap", false, "place join tables, partition buffers and microbenchmark tables in GC-free off-heap arenas (mmap-backed, huge-page advised)")

		micro       = fs.Bool("microbench", false, "run the standalone kernel microbenchmarks (probe/build ns-per-tuple per table, scalar vs batch) and emit JSON")
		benchtime   = fs.Duration("benchtime", time.Second, "minimum measuring time per microbenchmark cell")
		microsizes  = fs.String("microsizes", "16,20,24", "comma-separated log2 build sizes for -microbench")
		microreps   = fs.Int("microreps", 1, "measured repetitions per microbenchmark cell, interleaved so benchstat can attach p-values")
		microwarmup = fs.Int("microwarmup", 1, "untimed warmup passes per microbenchmark cell (negative disables)")
		microdists  = fs.String("microdists", "", "comma-separated hashtable.PrefetchDist values to sweep for the batch kernels (e.g. 0,4,8,16); empty = package default, no sweep")

		oracleRun = fs.Bool("oracle", false, "run a differential-oracle smoke pass (all algorithms, seeded schedules, batch+scalar) before reporting; see cmd/joinoracle for the full harness")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *oracleRun {
		failures, err := oracle.Sweep(context.Background(), oracle.SweepConfig{
			Schedules: 2,
			BuildLog2: 10,
			ProbeLog2: 12,
			BaseSeed:  *seed + 1,
			OffHeap:   *offheap,
			Out:       stdout,
		})
		if err != nil {
			fmt.Fprintf(stderr, "joinbench: -oracle: %v\n", err)
			return 2
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(stderr, "joinbench: -oracle: DIVERGENCE %s — reproduce: %s\n", f.Case, f.Repro())
			}
			return 1
		}
		fmt.Fprintln(stdout, "joinbench: oracle smoke pass clean")
		if *runID == "" && !*list && !*micro {
			return 0
		}
	}

	if *micro {
		sizes, err := parseIntList(*microsizes)
		if err != nil {
			fmt.Fprintf(stderr, "joinbench: -microsizes: %v\n", err)
			return 2
		}
		dists, err := parseIntList(*microdists)
		if err != nil {
			fmt.Fprintf(stderr, "joinbench: -microdists: %v\n", err)
			return 2
		}
		var dst io.Writer = stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(stderr, "joinbench: -o: %v\n", err)
				return 2
			}
			defer f.Close()
			dst = f
		}
		if err := bench.Microbench(bench.MicrobenchConfig{
			Benchtime: *benchtime, SizesLog2: sizes, Seed: *seed,
			Reps: *microreps, Warmup: *microwarmup,
			PrefetchDists: dists, OffHeap: *offheap,
		}, dst); err != nil {
			fmt.Fprintf(stderr, "joinbench: -microbench: %v\n", err)
			return 1
		}
		return 0
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "%-6s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *runID == "" {
		fmt.Fprintln(stderr, "joinbench: -run or -list required")
		fs.Usage()
		return 2
	}
	kind, err := join.ParseKind(*kindStr)
	if err != nil {
		fmt.Fprintln(stderr, "joinbench:", err)
		return 2
	}
	if *nullFr < 0 || *nullFr > 1 {
		fmt.Fprintf(stderr, "joinbench: -nullfrac %g outside [0,1]\n", *nullFr)
		return 2
	}
	if *budget < 0 {
		fmt.Fprintf(stderr, "joinbench: -budget %d is negative\n", *budget)
		return 2
	}
	cfg := bench.Config{Scale: *scale, Threads: *threads, Seed: *seed, Quick: *quick, Repeat: *repeat,
		Kind: kind, NullFrac: *nullFr, MemoryBudget: *budget, OffHeap: *offheap}
	// Output destinations are validated before any experiment runs: an
	// unwritable -trace or -o path must be a prompt usage error, not a
	// silently dropped artifact discovered after the measurement.
	var traceFile *os.File
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			fmt.Fprintf(stderr, "joinbench: -trace: %v\n", err)
			return 2
		}
		traceFile = f
		defer f.Close()
		cfg.Tracer = trace.New()
	}
	var dst io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "joinbench: -o: %v\n", err)
			return 2
		}
		defer f.Close()
		dst = f
	}

	ids := []string{*runID}
	if *runID == "all" {
		ids = ids[:0]
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		rep, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "joinbench: %s: %v\n", id, err)
			return 1
		}
		switch {
		case *asJSON:
			if err := rep.RenderJSON(dst); err != nil {
				fmt.Fprintln(stderr, "joinbench:", err)
				return 1
			}
		case *format == "markdown":
			rep.RenderMarkdown(dst)
		default:
			rep.Render(dst)
		}
	}
	if traceFile != nil {
		if err := cfg.Tracer.WriteTraceEvents(traceFile); err != nil {
			fmt.Fprintf(stderr, "joinbench: -trace: %v\n", err)
			return 1
		}
		if err := traceFile.Close(); err != nil {
			fmt.Fprintf(stderr, "joinbench: -trace: %v\n", err)
			return 1
		}
	}
	return 0
}
