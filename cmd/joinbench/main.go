// Command joinbench regenerates the tables and figures of Schuh et al.
// (SIGMOD 2016) from this reproduction. Each experiment prints the
// paper's expected shape next to the measured (or simulated) rows.
//
// Usage:
//
//	joinbench -list
//	joinbench -run fig1
//	joinbench -run all -scale 64 -threads 16
//	joinbench -run fig10 -quick
//	joinbench -run fig1 -json
//	joinbench -run fig1 -trace trace.json   # Chrome/Perfetto trace_event output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mmjoin/internal/bench"
	"mmjoin/internal/trace"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id (fig1..fig19, tab3, tab4) or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		scale   = flag.Int("scale", 64, "divide the paper's tuple counts by this factor")
		threads = flag.Int("threads", 0, "worker threads (0 = auto)")
		seed    = flag.Uint64("seed", 0, "workload seed (0 = default)")
		quick   = flag.Bool("quick", false, "trim sweeps for a fast pass")
		repeat  = flag.Int("repeat", 1, "repeat measured joins, report the fastest")
		format  = flag.String("format", "text", "output format: text or markdown")
		asJSON  = flag.Bool("json", false, "emit machine-readable per-algorithm records instead of tables")
		out     = flag.String("o", "", "write reports to a file instead of stdout")
		traceTo = flag.String("trace", "", "write a Chrome/Perfetto trace_event JSON file covering every executed join")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "joinbench: -run or -list required")
		flag.Usage()
		os.Exit(2)
	}
	cfg := bench.Config{Scale: *scale, Threads: *threads, Seed: *seed, Quick: *quick, Repeat: *repeat}
	if *traceTo != "" {
		cfg.Tracer = trace.New()
	}
	ids := []string{*run}
	if *run == "all" {
		ids = ids[:0]
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	var dst io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "joinbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	for _, id := range ids {
		rep, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "joinbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch {
		case *asJSON:
			if err := rep.RenderJSON(dst); err != nil {
				fmt.Fprintln(os.Stderr, "joinbench:", err)
				os.Exit(1)
			}
		case *format == "markdown":
			rep.RenderMarkdown(dst)
		default:
			rep.Render(dst)
		}
	}
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "joinbench:", err)
			os.Exit(1)
		}
		if err := cfg.Tracer.WriteTraceEvents(f); err != nil {
			fmt.Fprintln(os.Stderr, "joinbench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "joinbench:", err)
			os.Exit(1)
		}
	}
}
