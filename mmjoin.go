// Package mmjoin is a Go reproduction of "An Experimental Comparison of
// Thirteen Relational Equi-Joins in Main Memory" (Schuh, Chen, Dittrich;
// SIGMOD 2016): the thirteen join algorithms of the study behind one
// interface, the workload generators of its evaluation, and the
// practitioner guideline of its Section 9 as a decision procedure.
//
// The root package is a facade over the implementation packages:
//
//	internal/join       the thirteen algorithms (the core contribution)
//	internal/exec       shared execution layer: cancellable morsel pool,
//	                    buffer arena, per-phase stats and span tracing
//	internal/trace      span recorder, phase metrics, Perfetto export
//	internal/sched      task-order policies (LIFO, NUMA round-robin)
//	internal/hashtable  chained / linear-probing / CHT / array tables
//	internal/radix      parallel radix partitioning (global, two-pass, chunked)
//	internal/mway       sort-merge machinery
//	internal/datagen    PK/FK workloads, Zipf skew, sparse domains
//	internal/tpch       the TPC-H Q19 column-store study
//	internal/memsim     cache/TLB trace simulator (page-size experiments)
//	internal/numasim    NUMA machine simulator (bandwidth/scheduling/scaling)
//	internal/bench      one experiment per table and figure of the paper
//
// Quick use:
//
//	w, _ := mmjoin.Generate(mmjoin.WorkloadConfig{BuildSize: 1 << 20, ProbeSize: 10 << 20})
//	res, _ := mmjoin.MustNew("CPRA").Run(w.Build, w.Probe, &mmjoin.Options{Threads: 8, Domain: w.Domain})
//	fmt.Println(res.ThroughputMTuplesPerSec())
package mmjoin

import (
	"mmjoin/internal/bench"
	"mmjoin/internal/datagen"
	"mmjoin/internal/exec"
	"mmjoin/internal/join"
	"mmjoin/internal/tuple"
)

// Core relational types.
type (
	// Tuple is the 8-byte <Key, Payload> pair all algorithms join on.
	Tuple = tuple.Tuple
	// Relation is a flat in-memory relation.
	Relation = tuple.Relation
	// Pair is one materialized join match.
	Pair = tuple.Pair
)

// Join API.
type (
	// Algorithm is one of the thirteen joins of Table 2.
	Algorithm = join.Algorithm
	// Options configures a join execution.
	Options = join.Options
	// Result carries matches, checksums and the two-phase time split.
	Result = join.Result
	// Spec describes an algorithm in the Table 2 registry.
	Spec = join.Spec
	// Class is the Section 3 taxonomy (partition-based,
	// no-partitioning, sort-merge).
	Class = join.Class
)

// Taxonomy constants.
const (
	Partition   = join.Partition
	NoPartition = join.NoPartition
	SortMerge   = join.SortMerge
)

// Kind selects the join variant on Options.Kind. The streamed probe
// relation S is the join's LEFT side, the built relation R its RIGHT
// side; padding rows carry NullPayload in the missing slot (DESIGN.md
// §12).
type Kind = join.Kind

// The six join kinds every algorithm supports.
const (
	Inner      = join.Inner
	LeftOuter  = join.LeftOuter
	RightOuter = join.RightOuter
	FullOuter  = join.FullOuter
	LeftSemi   = join.LeftSemi
	LeftAnti   = join.LeftAnti
)

// NULL-key sentinels: with Options.NullableKeys set, a tuple whose Key
// is NullKey joins with nothing (not even another NULL), and padding
// rows carry NullPayload on their missing side.
const (
	NullKey     = tuple.NullKey
	NullPayload = tuple.NullPayload
)

// Kinds lists the six join kinds in declaration order.
func Kinds() []Kind { return join.Kinds() }

// ParseKind resolves a kind name ("inner", "left-outer", "right-outer",
// "full-outer", "left-semi", "left-anti").
func ParseKind(s string) (Kind, error) { return join.ParseKind(s) }

// Execution telemetry: every Result carries the per-phase record of the
// execution layer on Result.Exec.
type (
	// ExecStats is the execution telemetry of one join run (worker
	// count, queue strategy, per-phase wall time and task counts).
	ExecStats = exec.Stats
	// PhaseStat is one phase's entry in ExecStats.
	PhaseStat = exec.PhaseStat
	// Arena recycles partition buffers and scratch arrays across
	// repeated joins; pass one via Options.Arena for isolated reuse.
	Arena = exec.Arena
)

// NewArena returns an empty private buffer arena.
func NewArena() *Arena { return exec.NewArena() }

// New returns a fresh instance of the named algorithm (Table 2
// abbreviations: PRB, NOP, CHTJ, MWAY, NOPA, PRO, PRL, PRA, CPRL, CPRA,
// PROiS, PRLiS, PRAiS).
func New(name string) (Algorithm, error) { return join.New(name) }

// MustNew is New but panics on unknown names; for static configuration.
func MustNew(name string) Algorithm { return join.MustNew(name) }

// NewAny is New extended to every registered algorithm, including the
// ablations and the budget-aware extensions (HYBRID, ADAPT) —
// everything Recommend can name. Use it to instantiate a
// Recommendation's Algorithm field.
func NewAny(name string) (Algorithm, error) { return join.NewAny(name) }

// Algorithms lists all thirteen algorithms in Table 2 order.
func Algorithms() []Spec { return join.Algorithms() }

// Names lists the algorithm names in Table 2 order.
func Names() []string { return join.Names() }

// Advisor: the Section 9 lessons as a decision procedure.
type (
	// WorkloadProfile describes a join workload for Recommend.
	WorkloadProfile = join.WorkloadProfile
	// Recommendation is the advisor's verdict with its rationale.
	Recommendation = join.Recommendation
)

// Recommend picks an algorithm and radix-bit setting for a workload,
// following the paper's "lessons learned".
func Recommend(w WorkloadProfile) Recommendation { return join.Recommend(w) }

// Workload generation.
type (
	// WorkloadConfig describes a PK/FK workload (sizes, skew, holes).
	WorkloadConfig = datagen.Config
	// Workload is a generated pair of join relations.
	Workload = datagen.Workload
)

// Generate produces a deterministic workload in the paper's setup.
func Generate(c WorkloadConfig) (*Workload, error) { return datagen.Generate(c) }

// Experiment harness: regenerate any table or figure of the paper
// programmatically (cmd/joinbench is a thin wrapper over these).
type (
	// Experiment is one regenerable table or figure.
	Experiment = bench.Experiment
	// ExperimentConfig scales and seeds an experiment run.
	ExperimentConfig = bench.Config
	// Report is a regenerated table or figure with the paper's
	// expected shape attached.
	Report = bench.Report
)

// Experiments lists every regenerable table and figure plus the
// ablation and extension studies.
func Experiments() []Experiment { return bench.Experiments() }

// RunExperiment regenerates one table or figure by id (fig1..fig19,
// tab3, tab4, abl*).
func RunExperiment(id string, cfg ExperimentConfig) (*Report, error) {
	return bench.Run(id, cfg)
}
