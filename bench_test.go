// Top-level benchmarks: one Benchmark<Id> per table and figure of the
// paper's evaluation section. Each benchmark exercises the code path the
// experiment relies on at a size suited to `go test -bench`; the full
// parameter sweeps (and the rendered tables) live in internal/bench and
// are driven by cmd/joinbench.
package mmjoin_test

import (
	"fmt"
	"sync"
	"testing"

	"mmjoin"
	"mmjoin/internal/memsim"
	"mmjoin/internal/numa"
	"mmjoin/internal/numasim"
	"mmjoin/internal/radix"
	"mmjoin/internal/sched"
	"mmjoin/internal/tpch"
	"mmjoin/internal/tuple"
)

// Benchmark workload sizes: |R|=256k, |S|=2.56M keeps one join iteration
// in the tens of milliseconds.
const (
	benchBuild = 256 << 10
	benchProbe = benchBuild * 10
)

var (
	workloadOnce sync.Once
	benchW       *mmjoin.Workload
	skewW        *mmjoin.Workload
	holesW       *mmjoin.Workload
	equalW       *mmjoin.Workload
)

func workloads(b *testing.B) {
	b.Helper()
	workloadOnce.Do(func() {
		var err error
		if benchW, err = mmjoin.Generate(mmjoin.WorkloadConfig{BuildSize: benchBuild, ProbeSize: benchProbe, Seed: 1}); err != nil {
			panic(err)
		}
		if skewW, err = mmjoin.Generate(mmjoin.WorkloadConfig{BuildSize: benchBuild, ProbeSize: benchProbe, Zipf: 0.99, Seed: 2}); err != nil {
			panic(err)
		}
		if holesW, err = mmjoin.Generate(mmjoin.WorkloadConfig{BuildSize: benchBuild, ProbeSize: benchProbe, HoleFactor: 8, Seed: 3}); err != nil {
			panic(err)
		}
		if equalW, err = mmjoin.Generate(mmjoin.WorkloadConfig{BuildSize: benchBuild, ProbeSize: benchBuild, Seed: 4}); err != nil {
			panic(err)
		}
	})
}

// benchJoin runs one algorithm repeatedly over a workload.
func benchJoin(b *testing.B, name string, w *mmjoin.Workload, opts mmjoin.Options) {
	b.Helper()
	algo := mmjoin.MustNew(name)
	opts.Domain = w.Domain
	if opts.Threads == 0 {
		opts.Threads = 8
	}
	b.SetBytes(int64(len(w.Build)+len(w.Probe)) * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := algo.Run(w.Build, w.Probe, &opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Matches == 0 && len(w.Probe) > 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkFig1BlackBox: the four fundamental representatives
// (Figure 1).
func BenchmarkFig1BlackBox(b *testing.B) {
	workloads(b)
	for _, name := range []string{"MWAY", "CHTJ", "PRB", "NOP"} {
		b.Run(name, func(b *testing.B) { benchJoin(b, name, benchW, mmjoin.Options{}) })
	}
}

// BenchmarkFig2RadixBits: PRO one- vs two-pass partitioning at a fixed
// bit budget (Figure 2).
func BenchmarkFig2RadixBits(b *testing.B) {
	workloads(b)
	b.Run("1pass-10bits", func(b *testing.B) {
		benchJoin(b, "PRO", benchW, mmjoin.Options{RadixBits: 10})
	})
	b.Run("2pass-10bits", func(b *testing.B) {
		benchJoin(b, "PRO", benchW, mmjoin.Options{RadixBits: 10, ForceTwoPass: true})
	})
}

// BenchmarkFig3WhiteBox: the optimized variants added in Figure 3.
func BenchmarkFig3WhiteBox(b *testing.B) {
	workloads(b)
	for _, name := range []string{"NOPA", "PRO", "PRL", "PRA"} {
		b.Run(name, func(b *testing.B) { benchJoin(b, name, benchW, mmjoin.Options{}) })
	}
}

// BenchmarkFig5Breakdown: PR* vs the chunked CPR* family (Figure 5).
func BenchmarkFig5Breakdown(b *testing.B) {
	workloads(b)
	for _, name := range []string{"PRO", "PRL", "PRA", "CPRL", "CPRA"} {
		b.Run(name, func(b *testing.B) { benchJoin(b, name, benchW, mmjoin.Options{}) })
	}
}

// BenchmarkFig6Bandwidth: the discrete-event bandwidth-profile
// simulation behind Figure 6.
func BenchmarkFig6Bandwidth(b *testing.B) {
	workloads(b)
	topo := numa.PaperTopology()
	pr := radix.PartitionGlobal(benchW.Build, 8, 8, true)
	ps := radix.PartitionGlobal(benchW.Probe, 8, 8, true)
	tasks := numasim.FromGlobalPartitions(topo, pr, ps)
	m := numasim.PaperMachine()
	orders := map[string][]int{
		"PRO-sequential":   sched.SequentialOrder(len(tasks)),
		"PROiS-roundrobin": sched.RoundRobinOrder(len(tasks), topo.Nodes, numasim.HomeNodeOfPartition(topo, pr)),
	}
	for name, order := range orders {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := numasim.Simulate(m, tasks, order, 60); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7Scheduling: the improved-scheduling variants (Figure 7).
func BenchmarkFig7Scheduling(b *testing.B) {
	workloads(b)
	for _, name := range []string{"PROiS", "PRLiS", "PRAiS", "CPRL", "CPRA"} {
		b.Run(name, func(b *testing.B) { benchJoin(b, name, benchW, mmjoin.Options{}) })
	}
}

// BenchmarkFig8PageSize: the trace-driven page-size simulation
// (Figure 8) on its standout pair: PRB regresses, PRO gains.
func BenchmarkFig8PageSize(b *testing.B) {
	workloads(b)
	small := memsim.PaperGeometry(4 << 10)
	huge := memsim.PaperGeometry(2 << 20)
	for _, cfg := range []struct {
		name string
		geo  memsim.Geometry
	}{{"smallpages", small}, {"hugepages", huge}} {
		for _, algo := range []string{"PRB", "PRO"} {
			b.Run(fmt.Sprintf("%s-%s", algo, cfg.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := memsim.Simulate(algo, benchW.Build[:1<<15], benchW.Probe[:1<<16], 12, cfg.geo); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig9BitsSweep: sensitivity of a radix join to the bit count
// (Figure 9).
func BenchmarkFig9BitsSweep(b *testing.B) {
	workloads(b)
	for _, bits := range []uint{6, 10, 14} {
		b.Run(fmt.Sprintf("CPRL-%dbits", bits), func(b *testing.B) {
			benchJoin(b, "CPRL", equalW, mmjoin.Options{RadixBits: bits})
		})
	}
}

// BenchmarkFig10Scaling: input-size scaling for the two families
// (Figure 10).
func BenchmarkFig10Scaling(b *testing.B) {
	for _, size := range []int{1 << 16, 1 << 19} {
		w, err := mmjoin.Generate(mmjoin.WorkloadConfig{BuildSize: size, ProbeSize: size * 10, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"NOP", "CPRA"} {
			b.Run(fmt.Sprintf("%s-R%dk", name, size>>10), func(b *testing.B) {
				benchJoin(b, name, w, mmjoin.Options{})
			})
		}
	}
}

// BenchmarkFig11Partitioning: raw partition-phase cost, chunked vs
// global (Figure 11).
func BenchmarkFig11Partitioning(b *testing.B) {
	workloads(b)
	rel := benchW.Probe
	b.Run("global", func(b *testing.B) {
		b.SetBytes(int64(len(rel)) * 8)
		for i := 0; i < b.N; i++ {
			radix.PartitionGlobal(rel, 11, 8, true)
		}
	})
	b.Run("chunked", func(b *testing.B) {
		b.SetBytes(int64(len(rel)) * 8)
		for i := 0; i < b.N; i++ {
			radix.PartitionChunked(rel, 11, 8, true)
		}
	})
}

// BenchmarkFig12Predictor: CPRL at the Equation (1) bit choice
// (Figure 12).
func BenchmarkFig12Predictor(b *testing.B) {
	workloads(b)
	bits := radix.PredictBits(len(equalW.Build), radix.LoadFactorFor("linear"), 8, radix.PaperMachine())
	b.Run(fmt.Sprintf("CPRL-eq1-%dbits", bits), func(b *testing.B) {
		benchJoin(b, "CPRL", equalW, mmjoin.Options{RadixBits: bits})
	})
}

var (
	tpchOnce sync.Once
	tpchTB   *tpch.Tables
)

func tpchTables(b *testing.B) *tpch.Tables {
	b.Helper()
	tpchOnce.Do(func() {
		var err error
		tpchTB, err = tpch.Generate(tpch.Config{ScaleFactor: 0.1, Seed: 6, ShipSelectivity: 0.0357})
		if err != nil {
			panic(err)
		}
	})
	return tpchTB
}

// BenchmarkFig14Q19: the full TPC-H Q19 per executor (Figure 14).
func BenchmarkFig14Q19(b *testing.B) {
	tb := tpchTables(b)
	for _, algo := range []string{"NOP", "NOPA", "CPRL", "CPRA"} {
		b.Run(algo, func(b *testing.B) {
			b.SetBytes(int64(tb.Lineitem.NumTuples+tb.Part.NumTuples) * 8)
			for i := 0; i < b.N; i++ {
				if _, err := tpch.RunQ19(tb, algo, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig15Skew: uniform vs heavily skewed probe side (Figure 15).
func BenchmarkFig15Skew(b *testing.B) {
	workloads(b)
	for _, cfg := range []struct {
		name string
		w    *mmjoin.Workload
	}{{"zipf0", benchW}, {"zipf099", skewW}} {
		for _, algo := range []string{"NOP", "CPRL"} {
			b.Run(fmt.Sprintf("%s-%s", algo, cfg.name), func(b *testing.B) {
				benchJoin(b, algo, cfg.w, mmjoin.Options{})
			})
		}
	}
}

// BenchmarkFig16Threads: simulated machine scaling (Figure 16).
func BenchmarkFig16Threads(b *testing.B) {
	workloads(b)
	topo := numa.PaperTopology()
	pr := radix.PartitionGlobal(benchW.Build, 8, 8, true)
	ps := radix.PartitionGlobal(benchW.Probe, 8, 8, true)
	tasks := numasim.FromGlobalPartitions(topo, pr, ps)
	order := sched.SequentialOrder(len(tasks))
	m := numasim.PaperMachine()
	for _, threads := range []int{4, 16, 60, 120} {
		b.Run(fmt.Sprintf("%dthreads", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := numasim.Simulate(m, tasks, order, threads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig17Holes: array joins under a sparse key domain
// (Figure 17).
func BenchmarkFig17Holes(b *testing.B) {
	workloads(b)
	for _, algo := range []string{"NOPA", "CPRA"} {
		b.Run(algo+"-k8", func(b *testing.B) { benchJoin(b, algo, holesW, mmjoin.Options{}) })
	}
	b.Run("CPRA-k8-adaptive", func(b *testing.B) {
		benchJoin(b, "CPRA", holesW, mmjoin.Options{AdaptBitsToDomain: true})
	})
}

// BenchmarkFig18Selectivity: Q19 at the original vs a high pushdown
// selectivity (Figure 18).
func BenchmarkFig18Selectivity(b *testing.B) {
	for _, sel := range []float64{0.0357, 0.8} {
		tb, err := tpch.Generate(tpch.Config{ScaleFactor: 0.05, Seed: 7, ShipSelectivity: sel})
		if err != nil {
			b.Fatal(err)
		}
		for _, algo := range []string{"NOP", "CPRL"} {
			b.Run(fmt.Sprintf("%s-sel%.0f%%", algo, sel*100), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := tpch.RunQ19(tb, algo, 8); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig19Morphing: the microbenchmark-to-query morphing steps
// (Figure 19).
func BenchmarkFig19Morphing(b *testing.B) {
	tb := tpchTables(b)
	for v := tpch.MorphPrefiltered; v <= tpch.MorphPipelined; v++ {
		b.Run(fmt.Sprintf("variant%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tpch.RunMorph(tb, v, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTab3Speedup: the 4-vs-60-thread speedup simulation
// (Table 3).
func BenchmarkTab3Speedup(b *testing.B) {
	workloads(b)
	topo := numa.PaperTopology()
	prC := radix.PartitionChunked(benchW.Build, 8, 8, true)
	psC := radix.PartitionChunked(benchW.Probe, 8, 8, true)
	tasks := numasim.FromChunkedPartitions(topo, prC, psC)
	order := sched.SequentialOrder(len(tasks))
	m := numasim.PaperMachine()
	for _, threads := range []int{4, 60} {
		b.Run(fmt.Sprintf("CPRL-%dthreads", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := numasim.Simulate(m, tasks, order, threads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTab4Counters: the trace-driven counter simulation (Table 4).
func BenchmarkTab4Counters(b *testing.B) {
	workloads(b)
	geo := memsim.ScaledGeometry(2<<20, 64)
	for _, algo := range []string{"NOP", "PRO", "CPRL"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := memsim.Simulate(algo, benchW.Build[:1<<15], benchW.Probe[:1<<16], 10, geo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// sanity: the facade exposes a usable relation type.
var _ tuple.Relation = mmjoin.Relation{}
