package mmjoin_test

import (
	"fmt"

	"mmjoin"
)

// The smallest possible use: generate the paper's canonical PK/FK
// workload and join it.
func Example() {
	w, err := mmjoin.Generate(mmjoin.WorkloadConfig{
		BuildSize: 1000,
		ProbeSize: 5000,
		Seed:      42,
	})
	if err != nil {
		panic(err)
	}
	res, err := mmjoin.MustNew("CPRA").Run(w.Build, w.Probe,
		&mmjoin.Options{Threads: 4, Domain: w.Domain})
	if err != nil {
		panic(err)
	}
	// Every probe tuple references a build key, so |matches| = |S|.
	fmt.Println(res.Matches)
	// Output: 5000
}

// All thirteen algorithms are interchangeable: same inputs, same
// matches.
func Example_allAlgorithms() {
	w, _ := mmjoin.Generate(mmjoin.WorkloadConfig{BuildSize: 512, ProbeSize: 2048, Seed: 7})
	distinct := map[int64]bool{}
	for _, name := range mmjoin.Names() {
		res, err := mmjoin.MustNew(name).Run(w.Build, w.Probe,
			&mmjoin.Options{Threads: 2, Domain: w.Domain})
		if err != nil {
			panic(err)
		}
		distinct[res.Matches] = true
	}
	fmt.Println(len(mmjoin.Names()), "algorithms,", len(distinct), "distinct answer")
	// Output: 13 algorithms, 1 distinct answer
}

// The Section 9 advisor encodes the paper's lessons learned.
func ExampleRecommend() {
	rec := mmjoin.Recommend(mmjoin.WorkloadProfile{
		BuildTuples: 128 << 20,
		ProbeTuples: 1280 << 20,
		KeysDense:   true,
		Threads:     60,
	})
	fmt.Println(rec.Algorithm)

	skewed := mmjoin.Recommend(mmjoin.WorkloadProfile{
		BuildTuples: 128 << 20,
		ProbeTuples: 1280 << 20,
		ZipfSkew:    0.99,
		Threads:     60,
	})
	fmt.Println(skewed.Algorithm)
	// Output:
	// CPRA
	// NOP
}

// The registry reproduces Table 2 of the paper.
func ExampleAlgorithms() {
	for _, spec := range mmjoin.Algorithms()[:4] {
		fmt.Printf("%-5s %s\n", spec.Name, spec.Class)
	}
	// Output:
	// PRB   partition-based
	// NOP   no-partitioning
	// CHTJ  no-partitioning
	// MWAY  sort-merge
}
