package mmjoin_test

import (
	"testing"

	"mmjoin"
)

func TestFacadeEndToEnd(t *testing.T) {
	w, err := mmjoin.Generate(mmjoin.WorkloadConfig{BuildSize: 1 << 10, ProbeSize: 1 << 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(mmjoin.Names()) != 13 || len(mmjoin.Algorithms()) != 13 {
		t.Fatal("facade does not expose thirteen algorithms")
	}
	var matches []int64
	for _, name := range mmjoin.Names() {
		algo, err := mmjoin.New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := algo.Run(w.Build, w.Probe, &mmjoin.Options{Threads: 4, Domain: w.Domain})
		if err != nil {
			t.Fatal(err)
		}
		matches = append(matches, res.Matches)
	}
	for i := 1; i < len(matches); i++ {
		if matches[i] != matches[0] {
			t.Fatalf("algorithms disagree through the facade: %v", matches)
		}
	}
}

func TestFacadeClasses(t *testing.T) {
	if mmjoin.MustNew("NOP").Class() != mmjoin.NoPartition {
		t.Fatal("NOP class")
	}
	if mmjoin.MustNew("CPRL").Class() != mmjoin.Partition {
		t.Fatal("CPRL class")
	}
	if mmjoin.MustNew("MWAY").Class() != mmjoin.SortMerge {
		t.Fatal("MWAY class")
	}
}

func TestFacadeRecommend(t *testing.T) {
	rec := mmjoin.Recommend(mmjoin.WorkloadProfile{
		BuildTuples: 64 << 20, ProbeTuples: 640 << 20, KeysDense: true, Threads: 32,
	})
	if _, err := mmjoin.New(rec.Algorithm); err != nil {
		t.Fatalf("advisor recommended unknown algorithm: %v", err)
	}
	if len(rec.Rationale) == 0 {
		t.Fatal("no rationale")
	}
}

func TestFacadeNewUnknown(t *testing.T) {
	if _, err := mmjoin.New("BOGUS"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(mmjoin.Experiments()) < 19 {
		t.Fatalf("only %d experiments exposed", len(mmjoin.Experiments()))
	}
	rep, err := mmjoin.RunExperiment("fig1", mmjoin.ExperimentConfig{Scale: 4096, Threads: 2, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig1" || len(rep.Rows) == 0 {
		t.Fatalf("report: %+v", rep)
	}
	if _, err := mmjoin.RunExperiment("nope", mmjoin.ExperimentConfig{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
